"""The distributed training graph produced by the Graph Compiler.

Nodes are :class:`DistOp` instances: compute ops pinned to a GPU, and
communication ops pinned to one or more links ("we further treat a link
between two GPUs as a device", Sec. 4.2).  Durations are *not* stored on
the nodes — a cost provider (the Strategy Maker's profile-based simulator,
or the ground-truth execution engine) computes them, so the same compiled
graph serves both.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..errors import CompileError
from ..graph.op import Operation

NCCL_RESOURCE = "nccl"


class DistOpKind(enum.Enum):
    """Node kinds of the distributed training graph."""
    COMPUTE = "compute"        # replica of an original op
    SPLIT = "split"            # batch re-partitioning (compute, tiny)
    CONCAT = "concat"          # batch gathering (compute, tiny)
    TRANSFER = "transfer"      # tensor over one directed link
    ALLREDUCE = "allreduce"    # NCCL collective over a ring of links
    AGGREGATE = "aggregate"    # PS-side gradient sum (compute)
    APPLY = "apply"            # parameter update (compute)


#: every kind except TRANSFER and ALLREDUCE executes on a single GPU
_COMPUTE_KINDS = frozenset({
    DistOpKind.COMPUTE, DistOpKind.SPLIT, DistOpKind.CONCAT,
    DistOpKind.AGGREGATE, DistOpKind.APPLY,
})


@dataclass(slots=True)
class DistOp:
    """One node of the distributed training DAG."""

    name: str
    kind: DistOpKind
    source_op: Optional[Operation] = None  # original op (compute/apply)
    device: Optional[str] = None           # compute kinds
    src_device: Optional[str] = None       # transfer
    dst_device: Optional[str] = None       # transfer
    devices: Tuple[str, ...] = ()          # allreduce participants
    size_bytes: float = 0.0                # comm payload / aux-op traffic
    batch_fraction: float = 1.0            # compute share of the mini-batch
    group: Optional[int] = None            # strategy group of the source op
    hierarchical: bool = False             # allreduce structure
    # additional exclusive resources (NIC send/recv ports for inter-server
    # paths), filled in by the compiler which knows the topology
    extra_resources: Tuple[str, ...] = ()

    def __post_init__(self) -> None:
        # identity chains, not frozenset membership: Enum.__hash__ is a
        # Python-level call and this runs once per op on the compile path
        kind = self.kind
        if kind is DistOpKind.TRANSFER:
            if not self.src_device or not self.dst_device:
                raise CompileError(f"transfer {self.name!r} needs src and dst")
            if self.src_device == self.dst_device:
                raise CompileError(
                    f"transfer {self.name!r} must cross devices"
                )
        elif kind is DistOpKind.ALLREDUCE:
            if len(self.devices) < 2:
                raise CompileError(
                    f"allreduce {self.name!r} needs >=2 participants"
                )
        elif not self.device:
            raise CompileError(f"{kind.value} op {self.name!r} needs a device")

    # ------------------------------------------------------------------ #
    @property
    def is_compute(self) -> bool:
        kind = self.kind
        return not (kind is DistOpKind.TRANSFER
                    or kind is DistOpKind.ALLREDUCE)

    @property
    def is_communication(self) -> bool:
        kind = self.kind
        return kind is DistOpKind.TRANSFER or kind is DistOpKind.ALLREDUCE

    def resources(self) -> Tuple[str, ...]:
        """Exclusive resources this op occupies while executing."""
        if self.is_compute:
            return (self.device,)  # type: ignore[return-value]
        if self.kind is DistOpKind.TRANSFER:
            return (
                f"link:{self.src_device}->{self.dst_device}",
            ) + self.extra_resources
        # AllReduce: the ring's directed links, plus the global NCCL token
        # (NCCL cannot launch two collectives simultaneously, Sec. 6.2).
        links = []
        n = len(self.devices)
        for i in range(n):
            a, b = self.devices[i], self.devices[(i + 1) % n]
            if a != b:
                links.append(f"link:{a}->{b}")
        return tuple(links) + self.extra_resources + (NCCL_RESOURCE,)


class DistGraph:
    """DAG of :class:`DistOp` nodes with dependency edges."""

    def __init__(self, name: str):
        self.name = name
        self._ops: Dict[str, DistOp] = {}
        self._succ: Dict[str, List[str]] = {}
        self._pred: Dict[str, List[str]] = {}
        self._edges: set = set()  # (src_id, dst_id) pairs, for O(1) dedupe
        # integer mirror of the adjacency (op insertion order), kept in
        # lock-step by add/add_edge so the simulation kernel can lower
        # the graph without re-mapping every edge through a name table
        self._id_of: Dict[str, int] = {}
        self._succ_ids: List[List[int]] = []
        self._pred_ids: List[List[int]] = []
        # original op name -> its compute instances (per device)
        self.instances: Dict[str, List[str]] = {}
        # mutation stamp: lets repro.simulation.kernel cache one array
        # lowering per graph and re-lower only after a change
        self._version = 0
        self._sim_kernel = None

    @property
    def version(self) -> int:
        """Monotone mutation counter (bumped by add/add_edge)."""
        return self._version

    # ------------------------------------------------------------------ #
    def add(self, op: DistOp, deps: Sequence[str] = ()) -> DistOp:
        if op.name in self._ops:
            raise CompileError(f"duplicate dist-op name {op.name!r}")
        self._ops[op.name] = op
        self._succ[op.name] = []
        self._pred[op.name] = []
        self._id_of[op.name] = len(self._succ_ids)
        self._succ_ids.append([])
        self._pred_ids.append([])
        self._version += 1
        for dep in deps:
            self.add_edge(dep, op.name)
        return op

    def add_edge(self, src: str, dst: str) -> None:
        id_of = self._id_of
        si = id_of.get(src)
        di = id_of.get(dst)
        if si is None or di is None:
            raise CompileError(f"edge references unknown dist-op: {src}->{dst}")
        key = (si, di)
        if key in self._edges:
            return
        self._edges.add(key)
        self._succ[src].append(dst)
        self._pred[dst].append(src)
        self._succ_ids[si].append(di)
        self._pred_ids[di].append(si)
        self._version += 1

    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[DistOp]:
        return iter(self._ops.values())

    def __contains__(self, name: str) -> bool:
        return name in self._ops

    def op(self, name: str) -> DistOp:
        try:
            return self._ops[name]
        except KeyError:
            raise CompileError(f"unknown dist-op {name!r}") from None

    @property
    def op_names(self) -> List[str]:
        return list(self._ops.keys())

    def successors(self, name: str) -> List[str]:
        return list(self._succ[name])

    def predecessors(self, name: str) -> List[str]:
        return list(self._pred[name])

    def topological_order(self) -> List[str]:
        indeg = {n: len(p) for n, p in self._pred.items()}
        ready = [n for n in self._ops if indeg[n] == 0]
        order: List[str] = []
        head = 0
        while head < len(ready):
            node = ready[head]
            head += 1
            order.append(node)
            for succ in self._succ[node]:
                indeg[succ] -= 1
                if indeg[succ] == 0:
                    ready.append(succ)
        if len(order) != len(self._ops):
            raise CompileError(f"distributed graph {self.name!r} has a cycle")
        return order

    def validate(self) -> None:
        # cycle detection via the array lowering: it runs the same Kahn
        # pass on integer ids, and the kernel it builds is cached on the
        # graph for the scheduler/simulator that run right after
        from ..simulation.kernel import lower  # local: distgraph is lower-level
        if lower(self).has_cycle:
            raise CompileError(f"distributed graph {self.name!r} has a cycle")

    # ------------------------------------------------------------------ #
    def counts_by_kind(self) -> Dict[DistOpKind, int]:
        out: Dict[DistOpKind, int] = {}
        for op in self._ops.values():
            out[op.kind] = out.get(op.kind, 0) + 1
        return out

    def communication_ops(self) -> List[DistOp]:
        return [o for o in self._ops.values() if o.is_communication]

    def compute_ops(self) -> List[DistOp]:
        return [o for o in self._ops.values() if o.is_compute]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kinds = {k.value: v for k, v in self.counts_by_kind().items()}
        return f"DistGraph({self.name!r}, {len(self._ops)} ops, {kinds})"
