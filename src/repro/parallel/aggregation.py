"""Gradient-aggregation structures: PS and ring/hierarchical AllReduce.

Cost formulas follow the standard alpha-beta model the paper's Rust
simulator uses:

- ring AllReduce over n devices: ``2(n-1)/n * bytes / min_bw``
  plus ``2(n-1)`` per-step latencies;
- hierarchical AllReduce: reduce inside each server, ring across server
  leaders, broadcast back inside each server ("aggregates gradients among
  GPUs on the same physical server first and then across servers");
- the better of the two is selected per collective (Sec. 3.4).
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..cluster.topology import Cluster
from ..errors import CompileError

# (src, dst) -> (bandwidth bytes/s, latency s); provided by either the
# profiler's regressions or the ground-truth link specs.
LinkLookup = Callable[[str, str], Tuple[float, float]]

# Fixed cost of launching one NCCL collective (kernel launch, stream
# synchronization, rendezvous across ranks).  Paid once per AllReduce on
# top of the per-step ring latencies; this is what makes AllReduce
# latency-bound for models with hundreds of small gradients.
NCCL_LAUNCH_OVERHEAD = 200e-6


def cluster_link_lookup(cluster: Cluster) -> LinkLookup:
    """LinkLookup backed by the cluster's ground-truth link specs."""
    def lookup(src: str, dst: str) -> Tuple[float, float]:
        link = cluster.link(src, dst)
        return link.bandwidth, link.latency
    return lookup


def _ring_links(devices: Sequence[str]) -> List[Tuple[str, str]]:
    n = len(devices)
    return [(devices[i], devices[(i + 1) % n]) for i in range(n)]


def ring_allreduce_time(devices: Sequence[str], size_bytes: float,
                        lookup: LinkLookup) -> float:
    """Time for one ring AllReduce of ``size_bytes`` over ``devices``."""
    n = len(devices)
    if n < 2:
        return 0.0
    min_bw = float("inf")
    max_lat = 0.0
    for src, dst in _ring_links(devices):
        bw, lat = lookup(src, dst)
        min_bw = min(min_bw, bw)
        max_lat = max(max_lat, lat)
    steps = 2 * (n - 1)
    return (NCCL_LAUNCH_OVERHEAD + steps * (size_bytes / n) / min_bw
            + steps * max_lat)


def hierarchical_allreduce_time(devices: Sequence[str], size_bytes: float,
                                lookup: LinkLookup, cluster: Cluster) -> float:
    """Reduce-inside-server, ring-across-leaders, broadcast-back."""
    by_server: Dict[str, List[str]] = {}
    for d in devices:
        by_server.setdefault(cluster.device(d).server, []).append(d)
    # intra-server reduce (and the final broadcast, same cost)
    intra = 0.0
    for group in by_server.values():
        if len(group) >= 2:
            intra = max(intra, ring_allreduce_time(group, size_bytes, lookup))
    leaders = [group[0] for group in by_server.values()]
    inter = ring_allreduce_time(leaders, size_bytes, lookup)
    return intra + inter


def choose_allreduce(devices: Sequence[str], size_bytes: float,
                     lookup: LinkLookup, cluster: Cluster
                     ) -> Tuple[bool, float]:
    """Pick ring vs hierarchical; returns (hierarchical?, est_time)."""
    if len(devices) < 2:
        raise CompileError("allreduce needs at least 2 devices")
    ring = ring_allreduce_time(devices, size_bytes, lookup)
    servers = {cluster.device(d).server for d in devices}
    if len(servers) < 2 or len(servers) == len(devices):
        return False, ring
    hier = hierarchical_allreduce_time(devices, size_bytes, lookup, cluster)
    if hier < ring:
        return True, hier
    return False, ring


def allreduce_time(devices: Sequence[str], size_bytes: float,
                   lookup: LinkLookup, cluster: Cluster,
                   hierarchical: bool) -> float:
    """Time of one AllReduce under the chosen (ring/hierarchical) structure."""
    if hierarchical:
        return hierarchical_allreduce_time(devices, size_bytes, lookup, cluster)
    return ring_allreduce_time(devices, size_bytes, lookup)


def choose_ps_device(devices: Sequence[str], size_bytes: float,
                     lookup: LinkLookup,
                     load: Optional[Dict[str, float]] = None) -> str:
    """PS device choice: the replica device minimizing estimated push+pull
    completion time (Sec. 3.4 — the PS is colocated with one replica, so
    traffic to/from that device is eliminated).

    ``load`` carries bytes already assigned to each candidate's PS role by
    earlier gradients; the completion estimate charges the backlog queued
    on the candidate's access links.  This spreads parameters across PS
    devices exactly like TensorFlow's round-robin variable placement —
    without it every gradient would pick the same best-connected device
    and its NIC would serialize all synchronization ("the links to
    parameter servers may become the bottlenecks", Sec. 2.3).
    """
    if not devices:
        raise CompileError("PS aggregation needs at least one device")
    load = load if load is not None else {}
    best_dev = devices[0]
    best_time = float("inf")
    for candidate in devices:
        total = 0.0
        slowest_in = float("inf")
        for other in devices:
            if other == candidate:
                continue
            push_bw, push_lat = lookup(other, candidate)
            pull_bw, pull_lat = lookup(candidate, other)
            slowest_in = min(slowest_in, push_bw, pull_bw)
            total += size_bytes / push_bw + push_lat
            total += size_bytes / pull_bw + pull_lat
        if devices and slowest_in < float("inf"):
            # backlog of earlier gradients already parked on this PS:
            # pushes and pulls must drain through the same access links
            total += 2.0 * load.get(candidate, 0.0) * (len(devices) - 1) \
                / slowest_in
        if total < best_time:
            best_time = total
            best_dev = candidate
    if load is not None:
        load[best_dev] = load.get(best_dev, 0.0) + size_bytes
    return best_dev
