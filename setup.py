"""Legacy setup.py shim.

Kept so ``python setup.py develop`` / ``pip install -e .`` work in
offline environments whose setuptools lacks PEP-517 editable-wheel
support; all metadata lives in pyproject.toml.
"""

from setuptools import setup

setup()
