"""Training a CNN on the paper's heterogeneous 8-GPU testbed.

Reproduces the Table 1 situation for one model: HeteroG's searched
strategy vs the four data-parallel baselines (EV/CP x PS/AllReduce),
all measured on the execution engine:

    python examples/heterogeneous_cnn_training.py [model]

``model`` is any registry name (default vgg19): vgg19, resnet200,
inception_v3, mobilenet_v2, nasnet, transformer, bert_large, xlnet_large.
"""

import sys

from repro.baselines import DP_BASELINES, dp_strategy
from repro.cluster import cluster_8gpu
from repro.experiments import ExperimentContext, format_table
from repro.graph.models import build_model


def main(model: str = "vgg19"):
    cluster = cluster_8gpu()
    graph = build_model(model, "bench")
    print(f"model: {graph.name}  ops={len(graph)}  "
          f"params={graph.total_param_bytes() / 2 ** 20:.0f} MiB")
    print(f"cluster: {cluster}")

    ctx = ExperimentContext(cluster, seed=0)
    print("\nsearching deployment strategy (GNN + order scheduling)...")
    heterog = ctx.run_heterog(graph, episodes=24)

    rows = [["HeteroG", heterog.display_time, "-"]]
    for name in DP_BASELINES:
        # baselines run with the framework's default FIFO execution order
        measured = ctx.measure(graph, dp_strategy(name, graph, cluster),
                               name, use_order_scheduling=False)
        if measured.oom:
            rows.append([name, "OOM", "-"])
        else:
            speedup = heterog.speedup_over(measured)
            rows.append([name, measured.display_time,
                         f"{speedup * 100:.1f}%"])

    print()
    print(format_table(
        ["Scheme", "Per-iteration (s)", "HeteroG speed-up"], rows))
    print("\nHeteroG strategy mix:")
    for label, fraction in sorted(heterog.mix.items(), key=lambda kv: -kv[1]):
        if fraction > 0:
            print(f"  {label:10s} {fraction * 100:5.1f}%")
    print(f"\nsearch took {heterog.extras['search_seconds']:.1f}s "
          f"(simulated best: {heterog.extras['simulated_time']:.3f}s)")


if __name__ == "__main__":
    main(sys.argv[1] if len(sys.argv) > 1 else "vgg19")
