"""Quickstart: the HeteroG client API (paper Sec. 3.5, Fig. 5).

Build a single-GPU model, describe the heterogeneous cluster, and let
HeteroG produce and run the distributed deployment:

    python examples/quickstart.py
"""

import repro as heterog
from repro.agent import AgentConfig
from repro.graph import GraphBuilder, build_training_graph

BATCH_SIZE = 64


def model_func():
    """Create the single-GPU model: a small convnet training graph."""
    b = GraphBuilder("quickstart_cnn", BATCH_SIZE)
    x = b.input((32, 32, 3))
    for stage, channels in enumerate((32, 64, 128)):
        x = b.conv2d(x, channels, layer=f"conv{stage}")
        x = b.batch_norm(x, layer=f"conv{stage}")
        x = b.activation(x, layer=f"conv{stage}")
        x = b.pool(x, layer=f"pool{stage}")
    x = b.global_pool(x, layer="head")
    x = b.dense(x, 256, layer="fc")
    b.softmax_loss(x, 10)
    return build_training_graph(b)


def input_func():
    """Create the input dataset."""
    return heterog.Dataset(batch_size=BATCH_SIZE, num_samples=50_000)


def main():
    # Two machines: one with 2x V100 behind 100GbE, one with 2x 1080Ti
    # behind 50GbE — the heterogeneous situation the paper targets.
    device_info = [
        {"host": "10.0.0.1", "gpu_model": "Tesla V100", "gpus": 2,
         "nic_gbps": 100},
        {"host": "10.0.0.2", "gpu_model": "GTX 1080Ti", "gpus": 2,
         "nic_gbps": 50},
    ]
    config = heterog.HeteroGConfig(
        episodes=20,
        agent=AgentConfig(max_groups=24, gat_hidden=32, gat_layers=2,
                          gat_heads=2, strategy_dim=32, strategy_heads=2,
                          strategy_layers=1),
    )

    dist_runner = heterog.get_runner(model_func, input_func, device_info,
                                     config)
    report = dist_runner.run(steps=20)

    print("== HeteroG quickstart ==")
    print(f"global batch size     : {report.global_batch}")
    print(f"mean iteration time   : {report.mean_iteration_time * 1e3:.2f} ms")
    print(f"training throughput   : {report.throughput:,.0f} samples/s")
    strategy = dist_runner.deployment.strategy
    print("strategy mix (fraction of ops per parallelism class):")
    for label, fraction in sorted(strategy.strategy_mix().items(),
                                  key=lambda kv: -kv[1]):
        print(f"  {label:10s} {fraction * 100:5.1f}%")


if __name__ == "__main__":
    main()
