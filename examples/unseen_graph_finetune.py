"""Fine-tuning the GNN policy on an unseen graph (paper Sec. 6.5).

Pretrains the policy on a set of DNN graphs, then compares how quickly a
fresh policy vs the pretrained one reaches a good strategy for a model
family neither has seen:

    python examples/unseen_graph_finetune.py
"""

import time

from repro.agent import AgentConfig, HeteroGAgent
from repro.cluster import cluster_4gpu
from repro.graph.models import build_model

CONFIG = AgentConfig(max_groups=20, gat_hidden=32, gat_layers=2, gat_heads=2,
                     strategy_dim=32, strategy_heads=2, strategy_layers=1,
                     use_seeds=False)  # isolate what the *policy* learned

PRETRAIN_MODELS = ["vgg19", "mobilenet_v2", "transformer"]
UNSEEN = "inception_v3"


def best_time_curve(agent, name, episodes):
    curve = []
    for _ in range(episodes):
        agent.trainer.train_episode()
        curve.append(agent.trainer.best_time(name))
    return curve


def main():
    cluster = cluster_4gpu()
    episodes = 30

    print(f"pretraining policy on {PRETRAIN_MODELS} ...")
    pretrained = HeteroGAgent(cluster, CONFIG)
    for model in PRETRAIN_MODELS:
        pretrained.add_graph(build_model(model, "tiny"))
    start = time.time()
    pretrained.train(25)
    print(f"  pretraining took {time.time() - start:.1f}s")

    unseen_graph = build_model(UNSEEN, "tiny")

    scratch = HeteroGAgent(cluster, CONFIG)
    scratch.add_graph(unseen_graph)
    scratch_curve = best_time_curve(scratch, unseen_graph.name, episodes)

    finetune = HeteroGAgent(cluster, CONFIG)
    finetune.add_graph(build_model(UNSEEN, "tiny"))
    finetune.load_policy_state(pretrained.policy_state())
    finetune_curve = best_time_curve(finetune, unseen_graph.name, episodes)

    print(f"\nbest simulated iteration time on unseen {UNSEEN!r} "
          f"(lower is better):")
    print(f"{'episode':>8s} {'from scratch':>14s} {'fine-tuned':>12s}")
    for i in range(0, episodes, 5):
        print(f"{i + 1:8d} {scratch_curve[i]:14.4f} {finetune_curve[i]:12.4f}")

    target = scratch_curve[-1] * 1.05
    reach = next((i + 1 for i, t in enumerate(finetune_curve)
                  if t <= target), None)
    scratch_reach = next((i + 1 for i, t in enumerate(scratch_curve)
                          if t <= target), episodes)
    if reach is not None:
        print(f"\nfine-tuned policy reached the scratch-quality strategy in "
              f"{reach} episodes vs {scratch_reach} from scratch "
              f"({reach / scratch_reach * 100:.0f}%)")
    else:
        print("\nfine-tuned policy did not reach scratch quality within "
              f"{episodes} episodes")


if __name__ == "__main__":
    main()
