"""Micro-batch pipelining on a model-parallel ladder (paper Sec. 7).

The paper sketches pipelining as a natural extension of HeteroG: split
the mini-batch into micro-batches over the compiled distributed graph.
This example builds a FLOP-balanced 4-stage ladder on an NVLink server,
sweeps the micro-batch count and prints the simulated per-iteration
times plus a text Gantt chart of the pipelined execution:

    python examples/pipeline_parallelism.py
"""

from repro.cluster import homogeneous_cluster
from repro.graph import GraphBuilder, build_training_graph
from repro.parallel import GraphCompiler
from repro.parallel.pipeline import (
    pipeline_graph,
    pipeline_ladder_strategy,
    pipeline_speedup_estimate,
)
from repro.profiling import exact_profile
from repro.reporting import text_gantt
from repro.scheduling import ListScheduler
from repro.simulation import ProfileCostModel, Simulator


def build_model():
    b = GraphBuilder("pipeline_mlp", 512)
    x = b.input((4096,))
    for i in range(12):
        x = b.dense(x, 4096, layer=f"fc{i}")
        x = b.activation(x, kind="Gelu", layer=f"fc{i}")
    b.softmax_loss(x, 1000)
    return build_training_graph(b)


def main():
    cluster = homogeneous_cluster(4, gpus_per_server=4)
    graph = build_model()
    profile = exact_profile(graph, cluster)
    strategy = pipeline_ladder_strategy(graph, cluster, stages=4)
    compiler = GraphCompiler(cluster, profile)
    dist = compiler.compile(graph, strategy)
    cost = ProfileCostModel(cluster, profile)

    def run(graph_):
        schedule = ListScheduler().schedule(graph_, cost)
        return Simulator(cost).run(graph_, priorities=schedule.priorities,
                                   trace=True)

    base = run(dist)
    print(f"4-stage MP ladder, no pipelining: "
          f"{base.makespan * 1e3:.2f} ms/iteration")
    print(f"per-GPU busy: " + "  ".join(
        f"{d}={t * 1e3:.1f}ms" for d, t in sorted(base.device_busy.items())))

    best = None
    for k in (2, 4, 8):
        piped = pipeline_graph(dist, k)
        result = run(piped)
        ideal = pipeline_speedup_estimate(4, k)
        print(f"k={k}: {result.makespan * 1e3:.2f} ms "
              f"({base.makespan / result.makespan:.2f}x; ideal bound "
              f"{1 / ideal:.2f}x of stage-limited time)")
        if best is None or result.makespan < best[1].makespan:
            best = (piped, result)

    print("\npipelined execution timeline (best k):")
    print(text_gantt(best[0], best[1], width=70))


if __name__ == "__main__":
    main()
