"""Exploring the cluster and cost models directly.

Shows the substrate HeteroG's decisions rest on: per-op execution times
across GPU generations (the Fig. 3(b) effect), link bandwidths, and
AllReduce structure selection:

    python examples/custom_cluster.py
"""

from repro.cluster import (
    GBPS,
    GTX_1080TI,
    NVLINK,
    TESLA_P100,
    TESLA_V100,
    Cluster,
    LinkSpec,
    ServerSpec,
)
from repro.experiments import fig3b_op_speedups, format_table
from repro.parallel import choose_allreduce, cluster_link_lookup


def main():
    # A custom 6-GPU cluster: a DGX-like V100 box plus two older machines.
    cluster = Cluster([
        ServerSpec("dgx", TESLA_V100, 4, LinkSpec("100GbE", 100 * GBPS, 15e-6),
                   intra_link=NVLINK),
        ServerSpec("old0", GTX_1080TI, 1, LinkSpec("25GbE", 25 * GBPS, 15e-6)),
        ServerSpec("old1", TESLA_P100, 1, LinkSpec("25GbE", 25 * GBPS, 15e-6)),
    ])
    print(f"cluster: {cluster}")
    print("\nrelative compute power (weakest = 1.0):")
    for dev, power in cluster.relative_powers().items():
        model = cluster.device(dev).spec.model
        print(f"  {dev} ({model}): {power:.2f}")

    print("\nlink bandwidths (GB/s):")
    rows = []
    for src, dst in [("gpu0", "gpu1"), ("gpu0", "gpu4"), ("gpu4", "gpu5")]:
        link = cluster.link(src, dst)
        kind = "intra-server" if link.intra_server else "inter-server"
        rows.append([f"{src} -> {dst}", kind,
                     f"{link.bandwidth / 1e9:.1f}"])
    print(format_table(["Path", "Kind", "GB/s"], rows))

    print("\nAllReduce structure choice for a 512 MB gradient:")
    lookup = cluster_link_lookup(cluster)
    hierarchical, t = choose_allreduce(cluster.device_ids, 512e6, lookup,
                                       cluster)
    print(f"  {'hierarchical' if hierarchical else 'flat ring'}, "
          f"estimated {t * 1e3:.1f} ms")

    print("\nper-op 1080Ti/V100 time ratios (the Fig. 3(b) effect):")
    rows = []
    for point in fig3b_op_speedups(seed=0):
        rows.append([point.op_type, f"{point.mean:.2f}",
                     f"{min(point.normalized_times):.2f}"
                     f"-{max(point.normalized_times):.2f}"])
    print(format_table(["Op type", "Mean ratio", "Range"], rows))


if __name__ == "__main__":
    main()
