"""Sharing a heterogeneous cluster among training jobs (paper Sec. 7).

Uses HeteroG as a blackbox speed oracle to split the 8-GPU testbed among
competing jobs under different objectives:

    python examples/multi_job_cluster.py
"""

from repro.cluster import cluster_8gpu
from repro.experiments import format_table
from repro.graph import GraphBuilder, build_training_graph
from repro.graph.models import build_model
from repro.multijob import Job, MultiJobAllocator, Objective


def wide_job(name: str, width: int, layers: int, batch: int) -> Job:
    b = GraphBuilder(name, batch)
    x = b.input((width,))
    for i in range(layers):
        x = b.dense(x, width, layer=f"fc{i}")
        x = b.activation(x, layer=f"fc{i}")
    b.softmax_loss(x, 100)
    return Job(name, build_training_graph(b), global_batch=batch)


def main():
    cluster = cluster_8gpu()
    jobs = [
        # conv-heavy job: scales across GPUs (compute >> gradient traffic)
        Job("resnet-train", build_model("resnet200", "tiny", batch_size=256,
                                        image_size=64), global_batch=256),
        # wide MLP: parameter-heavy, saturates quickly
        wide_job("recsys", width=1024, layers=4, batch=256),
        Job("mobilenet-finetune", build_model("mobilenet_v2", "tiny"),
            global_batch=8),
    ]
    allocator = MultiJobAllocator(cluster, seed=0)

    for objective in (Objective.MAX_THROUGHPUT, Objective.FAIRNESS):
        allocation = allocator.allocate(jobs, objective=objective)
        rows = []
        for job in jobs:
            devices = allocation.devices[job.name]
            models = {}
            for d in devices:
                model = cluster.device(d).spec.model
                models[model] = models.get(model, 0) + 1
            rows.append([
                job.name,
                str(len(devices)),
                ", ".join(f"{n}x {m}" for m, n in models.items()),
                f"{allocation.speeds[job.name]:,.0f}",
            ])
        print(f"\nobjective: {objective.value}")
        print(format_table(
            ["Job", "GPUs", "Devices", "samples/s"], rows))
        print(f"total throughput: {allocation.total_throughput():,.0f} "
              f"samples/s; slowest job: {allocation.min_speed():,.0f}; "
              f"idle GPUs: {len(allocation.idle)}")


if __name__ == "__main__":
    main()
