"""Deploying a model that does not fit under pure data parallelism.

Reproduces the paper's Table 1/3 large-model situation: BERT-large at
batch 96 OOMs under every DP baseline on the 8-GPU testbed, while
HeteroG finds a feasible (mostly model-parallel) deployment:

    python examples/large_model_deployment.py
"""

from repro.baselines import DP_BASELINES, dp_strategy
from repro.cluster import cluster_8gpu
from repro.experiments import ExperimentContext, format_table
from repro.graph.models import build_model


def main():
    cluster = cluster_8gpu()
    # the Table 1 OOM row: Bert-large (24 layers), batch 96
    graph = build_model("bert_large", "paper", batch_size=96)
    print(f"model: {graph.name}  ops={len(graph)}  "
          f"params={graph.total_param_bytes() / 2 ** 30:.2f} GiB")

    ctx = ExperimentContext(cluster, seed=0)

    print("\ndata-parallel baselines:")
    rows = []
    for name in DP_BASELINES:
        measured = ctx.measure(graph, dp_strategy(name, graph, cluster),
                               name, use_order_scheduling=False,
                               iterations=2)
        rows.append([name, measured.display_time])
    print(format_table(["Scheme", "Per-iteration (s)"], rows))

    print("\nsearching a feasible HeteroG deployment...")
    heterog = ctx.run_heterog(graph, episodes=10, iterations=2)
    print(f"HeteroG per-iteration time: {heterog.display_time} s")

    mp_share = sum(v for k, v in heterog.mix.items() if k.startswith("MP:"))
    print(f"fraction of ops deployed without replication (MP): "
          f"{mp_share * 100:.1f}%")
    print("per-device share of MP ops:")
    for i, dev in enumerate(cluster.device_ids):
        frac = heterog.mix.get(f"MP:{dev}", 0.0)
        if frac > 0:
            model = cluster.device(dev).spec.model
            print(f"  G{i} ({model}): {frac * 100:5.1f}%")


if __name__ == "__main__":
    main()
