"""Tests for the numpy autodiff engine, layers, and optimizers.

Every primitive op gets a numerical gradient check; hypothesis drives
shapes and values for the core ones.
"""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import Adam, Dense, GATLayer, LayerNorm, SGD, StrategyNetwork, Tensor
from repro.nn import functional as F
from repro.nn.layers import MultiHeadSelfAttention
from repro.nn.tensor import parameter

RNG = np.random.default_rng(0)


def leaf(shape, scale=1.0):
    t = Tensor(RNG.normal(0, scale, size=shape))
    t.requires_grad = True
    return t


def numeric_grad(fn, x, eps=1e-6):
    g = np.zeros_like(x.data)
    it = np.nditer(x.data, flags=["multi_index"])
    for _ in it:
        idx = it.multi_index
        orig = x.data[idx]
        x.data[idx] = orig + eps
        hi = fn().item()
        x.data[idx] = orig - eps
        lo = fn().item()
        x.data[idx] = orig
        g[idx] = (hi - lo) / (2 * eps)
    return g


def check_grad(fn, x, tol=1e-5):
    x.zero_grad()
    out = fn()
    out.backward()
    analytic = x.grad.copy()
    x.zero_grad()
    numeric = numeric_grad(fn, x)
    assert np.abs(analytic - numeric).max() < tol


class TestPrimitives:
    @pytest.mark.parametrize("op", [
        F.relu, F.leaky_relu, F.elu, F.tanh, F.exp, F.gelu,
        lambda t: F.log(F.add(F.mul(t, t), Tensor(np.ones(t.shape)))),
        lambda t: F.softmax(t),
        lambda t: F.log_softmax(t),
    ])
    def test_unary_grads(self, op):
        x = leaf((3, 4))
        check_grad(lambda: F.sum(F.mul(op(x), op(x))), x)

    def test_add_broadcast_grad(self):
        x = leaf((3, 4))
        b = leaf((4,))
        check_grad(lambda: F.sum(F.mul(F.add(x, b), F.add(x, b))), b)

    def test_matmul_grads_both_sides(self):
        a = leaf((3, 5))
        b = leaf((5, 2))
        check_grad(lambda: F.sum(F.matmul(a, b)), a)
        check_grad(lambda: F.sum(F.matmul(a, b)), b)

    def test_batched_matmul(self):
        a = leaf((2, 3, 4))
        b = leaf((2, 4, 3))
        check_grad(lambda: F.sum(F.matmul(a, b)), a)

    def test_div_grad(self):
        a = leaf((3,))
        b = Tensor(np.abs(RNG.normal(2, 0.1, 3)) + 1.0)
        b.requires_grad = True
        check_grad(lambda: F.sum(F.div(a, b)), b)

    def test_sum_axis_keepdims(self):
        x = leaf((3, 4))
        check_grad(lambda: F.sum(F.mul(F.sum(x, axis=1, keepdims=True), x)), x)

    def test_mean_grad(self):
        x = leaf((4, 4))
        check_grad(lambda: F.sum(F.mul(F.mean(x, axis=0), Tensor(np.ones(4)))), x)

    def test_reshape_transpose_roundtrip(self):
        x = leaf((2, 6))
        const = Tensor(RNG.normal(size=(4, 3)))
        check_grad(
            lambda: F.sum(F.mul(F.transpose(F.reshape(x, (3, 4))), const)), x)

    def test_concat_grad(self):
        a = leaf((2, 3))
        b = leaf((2, 2))
        check_grad(lambda: F.sum(F.mul(F.concat([a, b], axis=1),
                                       F.concat([a, b], axis=1))), a)

    def test_masked_fill_blocks_grad(self):
        x = leaf((3, 3))
        mask = np.eye(3, dtype=bool)
        out = F.masked_fill(x, mask, -5.0)
        F.sum(out).backward()
        assert np.array_equal(x.grad, np.eye(3))

    def test_layer_norm_grad(self):
        x = leaf((4, 8))
        gain = leaf((8,))
        gain.data = np.abs(gain.data) + 0.5
        bias = leaf((8,))
        check_grad(
            lambda: F.sum(F.mul(F.layer_norm(x, gain, bias),
                                F.layer_norm(x, gain, bias))), x, tol=1e-4)

    @given(st.integers(1, 5), st.integers(1, 5))
    @settings(max_examples=15, deadline=None)
    def test_softmax_rows_sum_to_one(self, n, m):
        x = leaf((n, m))
        probs = F.softmax(x).data
        assert np.allclose(probs.sum(axis=-1), 1.0)

    def test_backward_requires_scalar(self):
        x = leaf((2, 2))
        with pytest.raises(ValueError):
            F.mul(x, x).backward()

    def test_grad_accumulates_over_reuse(self):
        x = leaf((3,))
        y = F.sum(F.add(x, x))
        y.backward()
        assert np.allclose(x.grad, 2.0)

    def test_detach_stops_gradient(self):
        x = leaf((3,))
        d = x.detach()
        assert not d.requires_grad


class TestLayers:
    def test_dense_output_shape(self):
        layer = Dense(8, 4, np.random.default_rng(0))
        out = layer(Tensor(RNG.normal(size=(5, 8))))
        assert out.shape == (5, 4)

    def test_layer_norm_normalizes(self):
        ln = LayerNorm(16)
        out = ln(Tensor(RNG.normal(3.0, 2.0, size=(4, 16))))
        assert np.allclose(out.data.mean(axis=-1), 0.0, atol=1e-6)
        assert np.allclose(out.data.std(axis=-1), 1.0, atol=1e-2)

    def test_gat_respects_adjacency(self):
        """A node with no neighbours except itself only sees itself."""
        rng = np.random.default_rng(1)
        gat = GATLayer(4, 4, 1, rng)
        h = RNG.normal(size=(3, 4))
        adj = np.eye(3, dtype=bool)
        adj[0, 1] = adj[1, 0] = True
        out1 = gat(Tensor(h), adj).data
        h2 = h.copy()
        h2[1] += 10.0  # perturb node 1
        out2 = gat(Tensor(h2), adj).data
        # node 2 is isolated: unaffected by node 1's change
        assert np.allclose(out1[2], out2[2])
        assert not np.allclose(out1[0], out2[0])

    def test_gat_head_divisibility(self):
        with pytest.raises(ValueError):
            GATLayer(4, 7, 2, np.random.default_rng(0))

    def test_mhsa_shape(self):
        attn = MultiHeadSelfAttention(8, 2, np.random.default_rng(0))
        out = attn(Tensor(RNG.normal(size=(5, 8))))
        assert out.shape == (5, 8)

    def test_strategy_network_logits(self):
        net = StrategyNetwork(6, 10, dim=16, heads=2, layers=1, seed=0)
        logits = net(Tensor(RNG.normal(size=(7, 6))))
        assert logits.shape == (7, 10)

    def test_module_num_parameters(self):
        layer = Dense(3, 2, np.random.default_rng(0))
        assert layer.num_parameters() == 3 * 2 + 2

    def test_state_dict_roundtrip(self):
        net = StrategyNetwork(4, 5, dim=8, heads=2, layers=1, seed=0)
        state = net.state_dict()
        net2 = StrategyNetwork(4, 5, dim=8, heads=2, layers=1, seed=9)
        net2.load_state_dict(state)
        x = Tensor(RNG.normal(size=(3, 4)))
        assert np.allclose(net(x).data, net2(x).data)

    def test_state_dict_shape_mismatch(self):
        net = StrategyNetwork(4, 5, dim=8, heads=2, layers=1, seed=0)
        other = StrategyNetwork(4, 5, dim=16, heads=2, layers=1, seed=0)
        with pytest.raises(ValueError):
            other.load_state_dict(net.state_dict())


class TestOptimizers:
    def _quadratic_problem(self):
        w = parameter((4,), np.random.default_rng(0), scale=1.0)
        target = np.asarray([1.0, -2.0, 0.5, 3.0])

        def loss():
            diff = w - Tensor(target)
            return F.sum(F.mul(diff, diff))
        return w, target, loss

    def test_sgd_converges(self):
        w, target, loss = self._quadratic_problem()
        opt = SGD([w], lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            loss().backward()
            opt.step()
        assert np.allclose(w.data, target, atol=1e-3)

    def test_adam_converges(self):
        w, target, loss = self._quadratic_problem()
        opt = Adam([w], lr=0.1)
        for _ in range(300):
            opt.zero_grad()
            loss().backward()
            opt.step()
        assert np.allclose(w.data, target, atol=1e-2)

    def test_clip_norm_limits_step(self):
        w = parameter((4,), np.random.default_rng(0))
        opt = SGD([w], lr=1.0, clip_norm=0.001)
        before = w.data.copy()
        (F.sum(F.mul(w, w)) * 1e6).backward()
        opt.step()
        assert np.linalg.norm(w.data - before) <= 0.0011

    def test_empty_params_rejected(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
