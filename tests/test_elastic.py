"""Elastic fleets: capacity events, churn schedules, scale-up policy."""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.agent import AgentConfig
from repro.baselines import dp_strategy
from repro.cluster import cluster_2gpu, cluster_4gpu
from repro.elastic import ChurnSchedule, ElasticPolicy
from repro.errors import ReproError
from repro.plan import fingerprint_cluster
from repro.profiling import Profiler
from repro.resilience import (
    CAPACITY_KINDS,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    Replanner,
    ResilientTrainer,
)
from repro.runtime import ExecutionEngine
from repro.runtime.deployment import build_deployment

from tests.helpers import make_mlp
from tests.test_resilience import TINY_AGENT, touched_devices


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


@pytest.fixture(scope="module")
def two_gpu():
    return cluster_2gpu()


@pytest.fixture(scope="module")
def mlp():
    return make_mlp(name="elastic_mlp")


@pytest.fixture(scope="module")
def deployment(two_gpu, mlp):
    profile = Profiler(seed=0).profile(mlp, two_gpu)
    strategy = dp_strategy("CP-AR", mlp, two_gpu)
    return build_deployment(mlp, two_gpu, strategy, profile=profile)


# --------------------------------------------------------------------- #
class TestCapacityScheduleGrammar:
    def test_parse_roundtrips_capacity_events(self):
        spec = ("join:server0@2x2,server_join:v100@3x2,"
                "preempt:gpu1@4x2,reclaim:gpu1@8")
        sched = FaultSchedule.parse(spec)
        assert str(sched) == spec
        assert {e.kind for e in sched} == CAPACITY_KINDS
        assert all(e.is_capacity for e in sched)

    def test_duplicate_events_rejected_with_colliding_specs(self):
        with pytest.raises(ReproError) as exc:
            FaultSchedule.parse("crash:gpu1@3,straggler:gpu1@3x2.0")
        msg = str(exc.value)
        assert "crash:gpu1@3" in msg and "straggler:gpu1@3x2" in msg
        # same event listed twice collides with itself too
        with pytest.raises(ReproError):
            FaultSchedule.parse("join:server0@2x1,join:server0@2x1")

    @pytest.mark.parametrize("spec", [
        "join:server0@2x0",       # join count must be >= 1
        "join:server0@2x1.5",     # ... and a whole number
        "preempt:gpu0@2x0.5",     # notice window must be >= 1
        "server_join:v100@2x0",   # server join needs >= 1 GPU
    ])
    def test_bad_capacity_factors_rejected(self, spec):
        with pytest.raises(ReproError):
            FaultSchedule.parse(spec)

    def test_random_with_capacity_kinds_is_deterministic(self, four_gpu):
        kinds = (FaultKind.DEVICE_CRASH, FaultKind.DEVICE_JOIN,
                 FaultKind.SERVER_JOIN, FaultKind.PREEMPT,
                 FaultKind.RECLAIM)
        a = FaultSchedule.random(four_gpu, seed=11, events=8, kinds=kinds)
        b = FaultSchedule.random(four_gpu, seed=11, events=8, kinds=kinds)
        assert str(a) == str(b)
        # the generated schedule is injectable as-is
        injector = FaultInjector(four_gpu, a)
        for i in range(20):
            injector.advance(i)

    def test_legacy_random_unchanged_without_capacity_kinds(self, four_gpu):
        """Default random() draws only the degradation kinds, so old
        seeded schedules stay byte-identical."""
        sched = FaultSchedule.random(four_gpu, seed=7, events=6)
        assert not any(e.is_capacity for e in sched)


# --------------------------------------------------------------------- #
class TestChurnSchedule:
    def test_same_seed_is_byte_identical(self, four_gpu):
        churn = ChurnSchedule(arrival_rate=0.4, preempt_rate=0.3,
                              reclaim_probability=0.5, seed=9)
        again = ChurnSchedule(arrival_rate=0.4, preempt_rate=0.3,
                              reclaim_probability=0.5, seed=9)
        assert str(churn.schedule(four_gpu)) == str(again.schedule(four_gpu))
        different = ChurnSchedule(arrival_rate=0.4, preempt_rate=0.3,
                                  reclaim_probability=0.5, seed=10)
        assert str(churn.schedule(four_gpu)) \
            != str(different.schedule(four_gpu))

    def test_generated_timeline_is_injectable(self, four_gpu):
        churn = ChurnSchedule(arrival_rate=0.5, preempt_rate=0.4,
                              reclaim_probability=0.8, horizon=24, seed=3)
        injector = FaultInjector(four_gpu, churn.schedule(four_gpu))
        for i in range(30):
            injector.advance(i)
        assert injector.current_cluster().num_devices >= 2

    def test_empty_rates_give_empty_schedule(self, four_gpu):
        churn = ChurnSchedule()
        assert churn.is_empty
        assert len(churn.schedule(four_gpu)) == 0

    @pytest.mark.parametrize("kwargs", [
        dict(arrival_rate=-0.1),
        dict(preempt_rate=-1.0),
        dict(notice=0),
        dict(reclaim_probability=1.5),
        dict(server_fraction=-0.1),
        dict(gpu_model="tpu"),
        dict(horizon=1),
    ])
    def test_validation(self, kwargs):
        with pytest.raises(ReproError):
            ChurnSchedule(**kwargs)


# --------------------------------------------------------------------- #
class TestWithDevices:
    """with_devices is the identity-preserving growth dual of
    without_devices (subcluster, by contrast, renumbers)."""

    @given(removed=st.sets(
        st.sampled_from(["gpu0", "gpu1", "gpu2", "gpu3"]),
        min_size=1, max_size=3))
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_roundtrip_restores_cluster_fingerprint(self, removed):
        cluster = cluster_4gpu()
        shrunk = cluster.without_devices(removed)
        # templates cover the whole-server-removed case, where the
        # shrunk cluster no longer knows the server's NIC/intra specs
        restored = shrunk.with_devices(
            [cluster.device(d) for d in sorted(removed)],
            templates={s.name: s for s in cluster.servers})
        assert fingerprint_cluster(restored) \
            == fingerprint_cluster(cluster)
        # identity, not just equality: same ids in the same order
        assert restored.device_ids == cluster.device_ids

    def test_subcluster_renumbers_but_without_devices_does_not(
            self, four_gpu):
        sub = four_gpu.subcluster(["gpu1", "gpu2", "gpu3"])
        assert sub.device_ids == ["gpu0", "gpu1", "gpu2"]  # renumbered
        kept = four_gpu.without_devices(["gpu0"])
        assert kept.device_ids == ["gpu1", "gpu2", "gpu3"]  # preserved

    def test_joined_devices_get_fresh_ids_and_wired_links(self, four_gpu):
        grown = four_gpu.with_joined_devices("server1", count=2)
        assert grown.device_ids == \
            four_gpu.device_ids + ["gpu4", "gpu5"]
        for dev in four_gpu.devices:       # existing devices untouched
            assert grown.device(dev.device_id) is dev
        # new intra-server link matches the existing intra-server links
        existing = four_gpu.link("gpu2", "gpu3")
        assert grown.link("gpu4", "gpu5").bandwidth == existing.bandwidth
        # cross-server links exist in both directions
        assert grown.link("gpu0", "gpu5") is not None
        assert grown.link("gpu5", "gpu0") is not None

    def test_joined_server_requires_fresh_name(self, four_gpu):
        from repro.cluster import NIC_50G, PCIE3, ServerSpec, TESLA_P100
        grown = four_gpu.with_joined_server(
            ServerSpec("server9", TESLA_P100, 2, NIC_50G,
                       intra_link=PCIE3))
        assert grown.num_devices == 6
        assert grown.device("gpu4").server == "server9"
        with pytest.raises(ReproError):
            four_gpu.with_joined_server(
                ServerSpec("server0", TESLA_P100, 2, NIC_50G,
                           intra_link=PCIE3))

    def test_with_devices_validates(self, four_gpu):
        with pytest.raises(ReproError):
            four_gpu.with_devices([four_gpu.device("gpu0")])  # duplicate
        assert four_gpu.with_devices([]) is four_gpu          # no-op


# --------------------------------------------------------------------- #
class TestInjectorCapacityLifecycle:
    def test_join_grows_fleet_without_renumbering(self, four_gpu):
        injector = FaultInjector(
            four_gpu, FaultSchedule.parse("join:server0@1x2"))
        injector.advance(1)
        fleet = injector.physical_cluster()
        assert fleet.device_ids == four_gpu.device_ids + ["gpu4", "gpu5"]
        assert injector.current_cluster().num_devices == 6

    def test_preempt_fires_synthesized_crash_at_deadline(self, four_gpu):
        injector = FaultInjector(
            four_gpu, FaultSchedule.parse("preempt:gpu3@2x2"))
        fired = injector.advance(2)
        assert [e.kind for e in fired] == [FaultKind.PREEMPT]
        assert injector.preempt_pending == {"gpu3": 4}
        assert "gpu3" in injector.current_cluster().device_ids  # not dead
        fired = injector.advance(4)
        assert [e.kind for e in fired] == [FaultKind.DEVICE_CRASH]
        assert "gpu3" not in injector.current_cluster().device_ids
        assert injector.preempt_pending == {}

    def test_reclaim_restores_the_device(self, four_gpu):
        injector = FaultInjector(four_gpu, FaultSchedule.parse(
            "crash:gpu2@1,reclaim:gpu2@4"))
        injector.advance(1)
        assert "gpu2" not in injector.current_cluster().device_ids
        injector.advance(4)
        restored = injector.current_cluster()
        assert "gpu2" in restored.device_ids
        assert fingerprint_cluster(restored) == fingerprint_cluster(four_gpu)

    def test_reclaim_without_death_rejected(self, four_gpu):
        injector = FaultInjector(
            four_gpu, FaultSchedule.parse("reclaim:gpu2@3"))
        with pytest.raises(ReproError):
            injector.advance(3)

    def test_preempt_unknown_device_rejected_at_activation(self, four_gpu):
        # gpu9 is a plausible future joiner at parse time, but no join
        # ever brings it: activation must fail loudly
        injector = FaultInjector(
            four_gpu, FaultSchedule.parse("preempt:gpu9@2x2"))
        with pytest.raises(ReproError):
            injector.advance(2)


# --------------------------------------------------------------------- #
class TestEmptyChurnPaired:
    def test_empty_churn_is_bit_identical_to_fault_only_path(
            self, two_gpu, deployment):
        """ChurnSchedule with zero rates -> the elastic trainer's output
        is bit-identical to the plain PR-4 replan trainer's."""

        def run(policy, schedule):
            injector = FaultInjector(two_gpu, schedule)
            engine = ExecutionEngine(two_gpu, seed=17,
                                     fault_injector=injector)
            trainer = ResilientTrainer(deployment, injector, engine=engine,
                                       policy=policy)
            report = trainer.run(5)
            return report.iteration_times, report.total_seconds

        churn = ChurnSchedule().schedule(two_gpu)
        assert run("elastic", churn) == run("replan", FaultSchedule.empty())


# --------------------------------------------------------------------- #
class TestElasticTrainer:
    @pytest.fixture(scope="class")
    def replanner(self, two_gpu, mlp):
        config = AgentConfig(seed=3, **TINY_AGENT)
        return Replanner(mlp, two_gpu, agent_config=config,
                         episodes=2, seed=3)

    def test_arrival_scale_up_is_warm_and_beats_ride(
            self, two_gpu, deployment, replanner):
        schedule = FaultSchedule.parse("server_join:v100@2x2")

        def run(policy):
            injector = FaultInjector(two_gpu, schedule)
            engine = ExecutionEngine(two_gpu, seed=21,
                                     fault_injector=injector)
            trainer = ResilientTrainer(
                deployment, injector, engine=engine,
                replanner=replanner if policy == "elastic" else None,
                policy=policy)
            return trainer, trainer.run(8)

        with telemetry.session() as session:
            trainer, elastic = run("elastic")
            hits = session.registry.get("plan_cache_hits_total",
                                        labels={"kind": "plan"})
        _, ride = run("ride")

        assert not elastic.stalled and elastic.completed_steps == 8
        scale_ups = [r for r in elastic.recoveries
                     if r.action == "scale_up"]
        assert len(scale_ups) == 1
        assert scale_ups[0].trigger == "arrival"
        assert scale_ups[0].lost_work_seconds == 0.0
        # the replan onto the with_devices-grown fleet hit the warm
        # plan layer
        assert hits is not None and hits.value > 0
        # the adopted plan actually uses the arrived capacity...
        assert touched_devices(trainer.deployment.dist) \
            & {"gpu2", "gpu3"}
        # ...and the run strictly beats riding the old fleet
        assert elastic.total_seconds < ride.total_seconds

    def test_preempt_notice_drains_before_death(
            self, two_gpu, mlp, deployment, replanner):
        schedule = FaultSchedule.parse("preempt:gpu1@2x2")

        def run(policy):
            injector = FaultInjector(two_gpu, schedule)
            engine = ExecutionEngine(two_gpu, seed=21,
                                     fault_injector=injector)
            trainer = ResilientTrainer(deployment, injector, engine=engine,
                                       replanner=replanner, policy=policy)
            return trainer, trainer.run(8)

        trainer, elastic = run("elastic")
        _, late = run("replan")

        assert not elastic.stalled and elastic.completed_steps == 8
        drains = [r for r in elastic.recoveries
                  if r.trigger == "preempt_notice"]
        assert len(drains) == 1 and drains[0].action == "replan"
        # drained before the deadline: nothing was lost, no detection
        # event ever fired, and the dead device is not touched
        assert elastic.lost_work == 0.0
        assert elastic.detections == []
        assert "gpu1" not in touched_devices(trainer.deployment.dist)
        # the late (replan-on-crash) baseline pays detection + search
        assert late.mttr > elastic.mttr
        assert late.lost_work > 0.0

    def test_scale_up_skipped_when_it_does_not_pay(
            self, two_gpu, deployment, replanner):
        injector = FaultInjector(
            two_gpu, FaultSchedule.parse("server_join:v100@2x2"))
        engine = ExecutionEngine(two_gpu, seed=21,
                                 fault_injector=injector)
        # an absurd restart cost: no savings can justify replanning
        trainer = ResilientTrainer(deployment, injector, engine=engine,
                                   replanner=replanner, policy="elastic",
                                   restart_overhead=1e9)
        report = trainer.run(6)
        assert not report.stalled
        assert report.recoveries == []
        assert trainer.deployment is deployment     # old plan kept

    def test_rejects_unknown_policy(self, two_gpu, deployment):
        injector = FaultInjector(two_gpu, FaultSchedule.empty())
        with pytest.raises(ReproError):
            ResilientTrainer(deployment, injector, policy="magic")


# --------------------------------------------------------------------- #
class TestElasticPolicy:
    def test_search_cost_ema(self):
        policy = ElasticPolicy(search_cost_smoothing=0.5)
        assert policy.search_cost_estimate == 0.0
        policy.observe_search(2.0)
        assert policy.search_cost_estimate == 2.0
        policy.observe_search(4.0)
        assert policy.search_cost_estimate == pytest.approx(3.0)

    def test_decide_needs_a_power_gain(self, two_gpu, deployment):
        policy = ElasticPolicy()
        decision = policy.decide(deployment, two_gpu,
                                 healthy_mean=0.5, remaining_steps=10)
        assert not decision.replan
        assert decision.expected_savings == 0.0

    def test_decide_prices_savings_against_cost(self, two_gpu, deployment):
        injector = FaultInjector(
            two_gpu, FaultSchedule.parse("server_join:v100@1x2"))
        injector.advance(1)
        grown = injector.current_cluster()
        cheap = ElasticPolicy(restart_overhead=0.0)
        decision = cheap.decide(deployment, grown,
                                healthy_mean=0.5, remaining_steps=10)
        assert decision.replan
        assert decision.expected_savings > 0.0
        assert decision.bound_after < decision.bound_before
        pricey = ElasticPolicy(restart_overhead=1e9)
        assert not pricey.decide(deployment, grown, healthy_mean=0.5,
                                 remaining_steps=10).replan

    def test_should_adopt_requires_strict_improvement(self):
        policy = ElasticPolicy()
        assert policy.should_adopt(1.0, 0.99)
        assert not policy.should_adopt(1.0, 1.0)
        assert policy.should_adopt(float("nan"), 5.0)  # nothing to compare
        margin = ElasticPolicy(min_predicted_gain=0.1)
        assert not margin.should_adopt(1.0, 0.95)
        assert margin.should_adopt(1.0, 0.85)

    def test_validation(self):
        with pytest.raises(ReproError):
            ElasticPolicy(search_cost_smoothing=0.0)
        with pytest.raises(ReproError):
            ElasticPolicy(min_predicted_gain=1.0)
