"""Tests for the REINFORCE trainer, agent facade, and seed candidates."""

import numpy as np
import pytest

from repro.agent import AgentConfig, HeteroGAgent, seed_action_vectors
from repro.agent.environment import StrategyEvaluator
from repro.errors import StrategyError
from repro.graph.grouping import group_operations
from repro.parallel import single_device_strategy
from repro.profiling import Profiler

from tests.helpers import make_mlp

SMALL = AgentConfig(max_groups=10, gat_hidden=16, gat_layers=2, gat_heads=2,
                    strategy_dim=16, strategy_heads=2, strategy_layers=1,
                    seed=0)


@pytest.fixture(scope="module")
def trained_agent(four_gpu):
    agent = HeteroGAgent(four_gpu, SMALL)
    agent.add_graph(make_mlp(name="train_mlp"))
    agent.train(12)
    return agent


@pytest.fixture(scope="module")
def four_gpu():
    from repro.cluster import cluster_4gpu
    return cluster_4gpu()


class TestEvaluator:
    def test_feasible_single_device(self, four_gpu):
        g = make_mlp(name="eval_mlp")
        profile = Profiler(seed=0).profile(g, four_gpu)
        ev = StrategyEvaluator(g, four_gpu, profile)
        outcome = ev.evaluate(single_device_strategy(g, four_gpu))
        assert outcome.feasible
        assert outcome.time > 0
        assert outcome.dist_ops == len(g)

    def test_order_scheduling_no_worse(self, four_gpu):
        """Rank-order scheduling should not lose to FIFO on average."""
        g = make_mlp(name="order_mlp", layers=4)
        profile = Profiler(seed=0).profile(g, four_gpu)
        st = single_device_strategy(g, four_gpu)
        with_order = StrategyEvaluator(g, four_gpu, profile,
                                       use_order_scheduling=True)
        without = StrategyEvaluator(g, four_gpu, profile,
                                    use_order_scheduling=False)
        assert with_order.evaluate(st).time <= without.evaluate(st).time * 1.05


class TestSeeds:
    def test_seed_vectors_shape(self, four_gpu):
        g = make_mlp(name="seed_mlp")
        avg = {n: 1.0 for n in g.op_names}
        grouping = group_operations(g, avg, 8)
        seeds = seed_action_vectors(g, four_gpu, grouping)
        assert len(seeds) >= 6
        for vec in seeds:
            assert vec.shape == (grouping.num_groups,)
            assert (vec >= 0).all()
            assert (vec < four_gpu.num_devices + 4).all()

    def test_first_four_are_uniform_dp(self, four_gpu):
        g = make_mlp(name="seed_mlp2")
        grouping = group_operations(g, {n: 1.0 for n in g.op_names}, 8)
        seeds = seed_action_vectors(g, four_gpu, grouping)
        m = four_gpu.num_devices
        for i in range(4):
            assert (seeds[i] == m + i).all()

    def test_ladder_uses_every_device_for_many_groups(self, four_gpu):
        g = make_mlp(name="seed_mlp3", layers=6)
        grouping = group_operations(g, {n: 1.0 for n in g.op_names}, 20)
        seeds = seed_action_vectors(g, four_gpu, grouping)
        ladder = seeds[4]  # memory-balanced MP ladder (after 4 DP seeds)
        assert set(ladder.tolist()) == set(range(four_gpu.num_devices))


class TestTrainer:
    def test_best_strategy_feasible(self, trained_agent):
        st = trained_agent.best_strategy("train_mlp")
        assert st is not None
        assert trained_agent.best_time("train_mlp") < float("inf")

    def test_best_no_worse_than_uniform_baselines(self, trained_agent,
                                                  four_gpu):
        """Seeded exploration guarantees HeteroG >= best uniform DP in the
        simulator (the paper's Table 1 invariant)."""
        from repro.baselines import all_dp_strategies
        ctx = trained_agent.context("train_mlp")
        best = trained_agent.best_time("train_mlp")
        for name, st in all_dp_strategies(ctx.graph, four_gpu).items():
            outcome = ctx.evaluator.evaluate(st)
            if outcome.feasible:
                assert best <= outcome.time + 1e-9, name

    def test_history_recorded(self, trained_agent):
        ctx = trained_agent.context("train_mlp")
        assert len(ctx.history) == 12
        assert len(ctx.time_history) == 12

    def test_episodes_to_reach(self, trained_agent):
        trainer = trained_agent.trainer
        best = trained_agent.best_time("train_mlp")
        episodes = trainer.episodes_to_reach("train_mlp", best * 1.001)
        assert episodes is not None
        assert 1 <= episodes <= 12

    def test_episodes_to_reach_unreachable(self, trained_agent):
        assert trained_agent.trainer.episodes_to_reach("train_mlp", 0.0) is None

    def test_policy_state_roundtrip(self, trained_agent, four_gpu):
        state = trained_agent.policy_state()
        fresh = HeteroGAgent(four_gpu, SMALL)
        fresh.add_graph(make_mlp(name="train_mlp"))
        fresh.load_policy_state(state)
        a = trained_agent.policy.logits(
            trained_agent.context("train_mlp").features,
            trained_agent.context("train_mlp").adjacency_mask,
            trained_agent.context("train_mlp").assignment,
        ).data
        b = fresh.policy.logits(
            fresh.context("train_mlp").features,
            fresh.context("train_mlp").adjacency_mask,
            fresh.context("train_mlp").assignment,
        ).data
        assert np.allclose(a, b)

    def test_duplicate_graph_rejected(self, trained_agent):
        with pytest.raises(StrategyError):
            trained_agent.add_graph(make_mlp(name="train_mlp"))

    def test_unknown_graph_rejected(self, trained_agent):
        with pytest.raises(StrategyError):
            trained_agent.context("nope")

    def test_multi_graph_training(self, four_gpu):
        agent = HeteroGAgent(four_gpu, SMALL)
        agent.add_graph(make_mlp(name="g1"))
        agent.add_graph(make_mlp(name="g2", layers=2))
        agent.train(6)
        assert agent.best_time("g1") < float("inf")
        assert agent.best_time("g2") < float("inf")
