"""Tests for the micro-batch pipelining extension (paper Sec. 7)."""

import pytest

from repro.cluster import cluster_4gpu
from repro.errors import CompileError
from repro.parallel import GraphCompiler, DistOpKind, single_device_strategy
from repro.parallel.pipeline import pipeline_graph, pipeline_speedup_estimate
from repro.parallel.strategy import Strategy, make_mp_strategy
from repro.profiling import Profiler, exact_profile
from repro.scheduling import ListScheduler
from repro.simulation import ProfileCostModel, Simulator

from tests.helpers import make_mlp


@pytest.fixture(scope="module")
def cluster():
    # single NVLink server: per-stage compute dominates transfers, the
    # regime where pipelining pays (cross-server stage boundaries at NIC
    # bandwidth would be transfer-bound and pipelining would not help)
    from repro.cluster import homogeneous_cluster
    return homogeneous_cluster(4, gpus_per_server=4)


def ladder_strategy(graph, cluster, stages=4):
    """FLOP-balanced forward stages with colocated backward (the pipeline
    layout pipeline_ladder_strategy produces)."""
    from repro.parallel.pipeline import pipeline_ladder_strategy
    return pipeline_ladder_strategy(graph, cluster, stages)


@pytest.fixture(scope="module")
def compiled(cluster):
    # wide layers: per-stage compute must dominate kernel overhead and
    # transfer latency for pipelining to pay off (as for real models)
    graph = make_mlp(layers=12, width=4096, batch_size=512, name="pipe_mlp")
    profile = exact_profile(graph, cluster)
    compiler = GraphCompiler(cluster, profile)
    dist = compiler.compile(graph, ladder_strategy(graph, cluster))
    return graph, profile, compiler, dist


class TestTransformation:
    def test_k1_is_identity(self, compiled):
        _, _, _, dist = compiled
        assert pipeline_graph(dist, 1) is dist

    def test_invalid_k(self, compiled):
        _, _, _, dist = compiled
        with pytest.raises(CompileError):
            pipeline_graph(dist, 0)

    def test_micro_instances_created(self, compiled):
        _, _, _, dist = compiled
        piped = pipeline_graph(dist, 4)
        piped.validate()
        assert len(piped) > 3 * len(dist)
        assert any("~mb2" in n for n in piped.op_names)

    def test_single_apply_per_parameter(self, compiled):
        """Synchronous pipeline: gradients summed, one apply — the
        semantics-preserving variant."""
        _, _, _, dist = compiled
        piped = pipeline_graph(dist, 4)
        applies_orig = sum(1 for o in dist if o.kind is DistOpKind.APPLY)
        applies_piped = sum(1 for o in piped if o.kind is DistOpKind.APPLY)
        assert applies_piped == applies_orig

    def test_microsum_before_apply(self, compiled):
        _, _, _, dist = compiled
        piped = pipeline_graph(dist, 3)
        microsums = [o for o in piped if o.name.endswith("~microsum")]
        assert microsums
        for ms in microsums:
            # k partial gradients feed each micro-sum
            assert len(piped.predecessors(ms.name)) == 3

    def test_micro_fractions_sum_to_original(self, compiled):
        _, _, _, dist = compiled
        piped = pipeline_graph(dist, 4)
        for name in dist.op_names:
            op = dist.op(name)
            if op.kind is DistOpKind.COMPUTE and op.source_op is not None \
                    and op.source_op.batch_scaled:
                micros = [piped.op(f"{name}~mb{m}") for m in range(4)]
                total = sum(m.batch_fraction for m in micros)
                assert total == pytest.approx(op.batch_fraction)

    def test_pipelining_overlaps_stages(self, compiled):
        """On a compute-heavy MP ladder, pipelining must cut the makespan
        toward the ideal k/(k+s-1) bound."""
        _, profile, compiler, dist = compiled
        from repro.cluster import homogeneous_cluster
        cost = ProfileCostModel(homogeneous_cluster(4, gpus_per_server=4),
                                profile)
        base = Simulator(cost).run(
            dist, priorities=ListScheduler().schedule(dist, cost).priorities
        ).makespan
        piped = pipeline_graph(dist, 8)
        t = Simulator(cost).run(
            piped,
            priorities=ListScheduler().schedule(piped, cost).priorities,
        ).makespan
        # measurable gain; full 1F1B efficiency would need memory-aware
        # micro-batch interleaving beyond this extension's scope
        assert t < base * 0.98

    def test_speedup_estimate(self):
        assert pipeline_speedup_estimate(4, 8) == pytest.approx(8 / 11)
        assert pipeline_speedup_estimate(1, 4) == 1.0
        with pytest.raises(CompileError):
            pipeline_speedup_estimate(0, 4)
