"""Paired fuzzing of the batched population surface.

``PlanBuilder.evaluate_many`` is the canonical population entry point;
its contract, hammered here across cost regimes:

- every *surviving* lane's outcome is bit-identical to a serial
  ``evaluate`` of the same strategy (work-conserving and FIFO
  scheduling, kernel and reference engines);
- the batched winner is the serial winner, byte-equal makespan;
- lanes killed by the lane bound ("prebound"), the static kernel bound
  ("bound") or a mid-simulation abort ("midsim") report *admissible*
  partial makespans — ``outcome.bound`` never exceeds the true serial
  makespan, so no potential winner is ever pruned;
- the lane bound stays admissible even under the strict
  (non-work-conserving) engine mode;
- stochastic (jittered) cost providers disable lane pricing outright
  and evaluate_many degrades to the plain serial sweep, bit-identically.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.agent.policy import actions_to_strategy, num_actions
from repro.cluster import cluster_4gpu
from repro.graph import GraphBuilder, build_training_graph
from repro.graph.grouping import group_operations
from repro.plan import BestSoFar, PlanBuilder
from repro.profiling import exact_profile
from repro.scheduling import ListScheduler
from repro.simulation import LanePlanner, Simulator
from repro.simulation.costs import TruthCostModel

CLUSTER = cluster_4gpu()


def random_graph(layers: int, width: int, batch: int, branches: bool):
    b = GraphBuilder(f"lanes_{layers}_{width}_{batch}_{branches}", batch)
    x = b.input((8,))
    for i in range(layers):
        x = b.dense(x, width, layer=f"fc{i}")
        if branches and i % 2 == 0:
            left = b.activation(x, layer=f"l{i}")
            right = b.activation(x, kind="Gelu", layer=f"r{i}")
            x = b.add_n([left, right], layer=f"merge{i}")
        else:
            x = b.activation(x, layer=f"fc{i}")
    b.softmax_loss(x, 10)
    return build_training_graph(b)


def candidate_strategies(graph, rng: np.random.Generator, n: int,
                         groups: int = 6):
    grouping = group_operations(graph, {op: 1.0 for op in graph.op_names},
                                groups)
    return [
        actions_to_strategy(
            graph, CLUSTER, grouping,
            rng.integers(0, num_actions(CLUSTER), grouping.num_groups))
        for _ in range(n)
    ]


def serial_truth(graph, profile, pool, **builder_kwargs):
    """Unpruned serial ground truth on a fresh builder."""
    builder = PlanBuilder(graph, CLUSTER, profile, **builder_kwargs)
    return [builder.evaluate(s, prune=False) for s in pool]


def assert_paired(outcomes, truth, *, check_winner=True):
    """The paired-fuzz contract for one (batched, serial) pool sweep.

    ``check_winner=False`` for sweeps under per-lane hard limits, which
    may legitimately kill the true winner (``prune_above`` is a cap,
    not a best-so-far)."""
    assert len(outcomes) == len(truth)
    for got, want in zip(outcomes, truth):
        if got.pruned:
            assert got.prune_stage in ("prebound", "bound", "midsim")
            assert not got.feasible
            assert got.time == float("inf")
            assert got.bound is not None
            # admissible partial makespan: never above the true serial
            # makespan, so the lane provably could not have won
            if want.feasible:
                assert got.bound <= want.time + 1e-9
        else:
            # surviving lane: bit-identical to its serial evaluation
            assert got.time == want.time
            assert got.feasible == want.feasible
            assert got.oom == want.oom
    # winner identity (byte-equal), when any lane is feasible
    if not check_winner:
        return
    times = [o.time if o.feasible else float("inf") for o in truth]
    idx = min(range(len(times)), key=times.__getitem__)
    if math.isfinite(times[idx]):
        got_times = [o.time if o.feasible else float("inf")
                     for o in outcomes]
        jdx = min(range(len(got_times)), key=got_times.__getitem__)
        assert (jdx, got_times[jdx]) == (idx, times[idx])
        assert not outcomes[jdx].pruned


@st.composite
def graph_and_pool(draw):
    layers = draw(st.integers(1, 3))
    width = draw(st.sampled_from([8, 16]))
    batch = draw(st.sampled_from([4, 8]))
    branches = draw(st.booleans())
    seed = draw(st.integers(0, 1000))
    graph = random_graph(layers, width, batch, branches)
    rng = np.random.default_rng(seed)
    return graph, candidate_strategies(graph, rng, 5)


# --------------------------------------------------------------------- #
class TestPairedIdentity:
    @settings(max_examples=12, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_pool())
    def test_work_conserving(self, payload):
        graph, pool = payload
        profile = exact_profile(graph, CLUSTER)
        truth = serial_truth(graph, profile, pool)
        builder = PlanBuilder(graph, CLUSTER, profile)
        outcomes = builder.evaluate_many(pool, best=BestSoFar())
        assert_paired(outcomes, truth)

    @settings(max_examples=8, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_pool())
    def test_fifo_scheduling(self, payload):
        graph, pool = payload
        profile = exact_profile(graph, CLUSTER)
        truth = serial_truth(graph, profile, pool,
                             use_order_scheduling=False)
        builder = PlanBuilder(graph, CLUSTER, profile,
                              use_order_scheduling=False)
        outcomes = builder.evaluate_many(pool, best=BestSoFar())
        assert_paired(outcomes, truth)

    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_pool())
    def test_reference_engine_pairing(self, payload):
        """Batched on the kernel engine vs serial on the reference
        engine: the acceptance pairing — surviving lanes byte-equal."""
        graph, pool = payload
        profile = exact_profile(graph, CLUSTER)
        truth = serial_truth(graph, profile, pool, engine="reference")
        builder = PlanBuilder(graph, CLUSTER, profile)
        outcomes = builder.evaluate_many(pool, best=BestSoFar())
        assert_paired(outcomes, truth)

    def test_unpruned_evaluate_many_is_the_serial_sweep(self):
        graph = random_graph(2, 16, 8, True)
        profile = exact_profile(graph, CLUSTER)
        pool = candidate_strategies(graph, np.random.default_rng(2), 5)
        truth = serial_truth(graph, profile, pool)
        builder = PlanBuilder(graph, CLUSTER, profile)
        outcomes = builder.evaluate_many(pool, prune=False)
        for got, want in zip(outcomes, truth):
            assert not got.pruned
            assert got.time == want.time
            assert got.feasible == want.feasible

    def test_duplicate_strategies_share_one_outcome(self):
        graph = random_graph(2, 8, 4, False)
        profile = exact_profile(graph, CLUSTER)
        pool = candidate_strategies(graph, np.random.default_rng(4), 2)
        builder = PlanBuilder(graph, CLUSTER, profile)
        outcomes = builder.evaluate_many(
            [pool[0], pool[1], pool[0]], best=BestSoFar())
        assert outcomes[2] is outcomes[0]
        before = builder.evals_total
        builder.evaluate_many([pool[0], pool[0], pool[0]])
        # duplicates beyond the first lane never re-enter evaluate()
        assert builder.evals_total == before + 1


# --------------------------------------------------------------------- #
class TestPruneAboveLanes:
    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_pool())
    def test_killed_lanes_report_admissible_partials(self, payload):
        """A threshold aimed at the winner kills the losing lanes, and
        every killed lane's recorded bound stays below its true serial
        makespan — the admissibility half of the contract."""
        graph, pool = payload
        profile = exact_profile(graph, CLUSTER)
        truth = serial_truth(graph, profile, pool)
        times = [o.time for o in truth if o.feasible]
        if not times:
            return  # nothing to prune against
        limit = min(times) * 1.0000001  # only the winner survives it
        builder = PlanBuilder(graph, CLUSTER, profile)
        outcomes = builder.evaluate_many(pool, prune_above=limit)
        assert_paired(outcomes, truth)
        for got, want in zip(outcomes, truth):
            if want.feasible and want.time > limit:
                assert got.pruned

    def test_per_strategy_thresholds(self):
        graph = random_graph(2, 16, 8, True)
        profile = exact_profile(graph, CLUSTER)
        pool = candidate_strategies(graph, np.random.default_rng(7), 3)
        truth = serial_truth(graph, profile, pool)
        builder = PlanBuilder(graph, CLUSTER, profile)
        thresholds = [None, 1e-12, None]
        outcomes = builder.evaluate_many(pool, prune_above=thresholds)
        # a per-lane hard limit may kill the true winner by design
        assert_paired(outcomes, truth, check_winner=False)
        # unthresholded lanes are always fully evaluated
        assert not outcomes[0].pruned
        assert not outcomes[2].pruned
        # the tightly-thresholded lane is killed whenever its lane
        # bound is finite (reconstruction failures degrade to -inf and
        # must fall through to the full pipeline)
        if outcomes[1].pruned:
            assert outcomes[1].bound > 1e-12

    def test_threshold_sequence_length_mismatch(self):
        graph = random_graph(1, 8, 4, False)
        profile = exact_profile(graph, CLUSTER)
        pool = candidate_strategies(graph, np.random.default_rng(1), 3)
        builder = PlanBuilder(graph, CLUSTER, profile)
        with pytest.raises(ValueError):
            builder.evaluate_many(pool, prune_above=[1.0])

    def test_prebound_kill_avoids_compilation(self):
        """Lanes killed by the lane bound never reach the compiler:
        their outcome reports dist_ops == 0."""
        graph = random_graph(2, 16, 8, False)
        profile = exact_profile(graph, CLUSTER)
        pool = candidate_strategies(graph, np.random.default_rng(6), 6)
        builder = PlanBuilder(graph, CLUSTER, profile)
        outcomes = builder.evaluate_many(pool, prune_above=1e-12)
        for outcome in outcomes:
            if outcome.prune_stage == "prebound":
                assert outcome.dist_ops == 0
                assert outcome.bound > 1e-12

    def test_prebound_outcome_not_served_under_looser_threshold(self):
        """A prebound-killed lane must be re-evaluated exactly once the
        threshold loosens above its recorded bound."""
        graph = random_graph(2, 16, 8, False)
        profile = exact_profile(graph, CLUSTER)
        pool = candidate_strategies(graph, np.random.default_rng(8), 4)
        truth = serial_truth(graph, profile, pool)
        builder = PlanBuilder(graph, CLUSTER, profile)
        first = builder.evaluate_many(pool, prune_above=1e-12)
        killed = [i for i, o in enumerate(first)
                  if o.prune_stage == "prebound" and truth[i].feasible]
        if not killed:
            pytest.skip("no prebound-killed feasible lane on this pool")
        second = builder.evaluate_many(pool)
        for i in killed:
            assert not second[i].pruned
            assert second[i].time == truth[i].time


# --------------------------------------------------------------------- #
class TestStrictModeAdmissibility:
    def test_lane_bound_below_strict_makespan(self):
        """The lane bound is a no-contention earliest-finish DP; under
        the strict (non-work-conserving) engine mode start times only
        move later, so the bound must stay admissible there too."""
        graph = random_graph(2, 16, 8, True)
        profile = exact_profile(graph, CLUSTER)
        builder = PlanBuilder(graph, CLUSTER, profile)
        planner = LanePlanner(graph, CLUSTER, builder.cost)
        assert planner.usable
        pool = candidate_strategies(graph, np.random.default_rng(3), 6)
        bounds, finish = planner.bounds(pool)
        assert finish.shape == (len(pool), planner.n_ops)
        sim = Simulator(builder.cost)
        checked = 0
        for strategy, bound in zip(pool, bounds):
            if not builder.evaluate(strategy, prune=False).feasible:
                continue
            plan = builder.build(strategy)
            prios = ListScheduler().schedule(plan.dist,
                                             builder.cost).priorities
            strict = sim.run(plan.dist, priorities=prios, strict=True)
            assert bound <= strict.makespan + 1e-9
            checked += 1
        assert checked > 0


# --------------------------------------------------------------------- #
class TestJitteredCosts:
    def test_stochastic_cost_disables_lane_pricing(self):
        graph = random_graph(2, 16, 8, False)
        jittered = TruthCostModel(CLUSTER, jitter_sigma=0.05, seed=11)
        assert not jittered.deterministic
        planner = LanePlanner(graph, CLUSTER, jittered)
        assert not planner.usable
        pool = candidate_strategies(graph, np.random.default_rng(5), 3)
        bounds, _ = planner.bounds(pool)
        assert np.all(np.isneginf(bounds))

    def test_evaluate_many_degrades_to_serial_sweep(self):
        """With an unusable planner installed, evaluate_many must fall
        through to the plain serial best-so-far sweep, bit-identically
        (no lane is ever prebound-killed on a -inf bound)."""
        graph = random_graph(2, 16, 8, True)
        profile = exact_profile(graph, CLUSTER)
        pool = candidate_strategies(graph, np.random.default_rng(9), 5)
        ref = PlanBuilder(graph, CLUSTER, profile)
        shared = BestSoFar()
        want = [ref.evaluate(s, best=shared) for s in pool]
        builder = PlanBuilder(graph, CLUSTER, profile)
        builder._lane_planner = LanePlanner(
            graph, CLUSTER,
            TruthCostModel(CLUSTER, jitter_sigma=0.05, seed=11))
        assert not builder._lane_planner.usable
        outcomes = builder.evaluate_many(pool, best=BestSoFar())
        for got, exp in zip(outcomes, want):
            assert got.pruned == exp.pruned
            assert got.time == exp.time
            assert got.feasible == exp.feasible
