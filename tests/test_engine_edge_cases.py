"""Additional engine/cost edge-case tests."""

import numpy as np
import pytest

from repro.cluster import GBPS, NVLINK, TESLA_V100, Cluster, LinkSpec, ServerSpec, cluster_4gpu
from repro.errors import SimulationError
from repro.parallel.distgraph import DistGraph, DistOp, DistOpKind
from repro.profiling import Profiler
from repro.simulation import Simulator, TruthCostModel
from repro.simulation.costs import MappingCostModel, ProfileCostModel

from tests.helpers import make_mlp


def compute(name, device):
    return DistOp(name=name, kind=DistOpKind.COMPUTE, device=device)


class TestEngineEdgeCases:
    def test_parked_op_retried_on_second_resource(self):
        """An op blocked on two resources must run once both free."""
        g = DistGraph("g")
        g.add(compute("hold1", "d0"))
        g.add(compute("hold2", "d1"))
        g.add(DistOp(name="ar", kind=DistOpKind.ALLREDUCE,
                     devices=("d0", "d1")))
        # ar needs links d0->d1, d1->d0 + nccl; holds occupy the devices
        # (not the links) so ar runs immediately in parallel
        res = Simulator(MappingCostModel(
            {"hold1": 5.0, "hold2": 3.0, "ar": 1.0}
        )).run(g)
        assert res.makespan == pytest.approx(5.0)

    def test_transfer_contends_with_allreduce_links(self):
        g = DistGraph("g")
        g.add(DistOp(name="ar", kind=DistOpKind.ALLREDUCE,
                     devices=("d0", "d1")))
        g.add(DistOp(name="t", kind=DistOpKind.TRANSFER,
                     src_device="d0", dst_device="d1"))
        res = Simulator(MappingCostModel({"ar": 2.0, "t": 2.0})).run(g)
        # t uses link d0->d1 which the allreduce ring seizes
        assert res.makespan == pytest.approx(4.0)

    def test_priority_respected_among_parked_waiters(self):
        g = DistGraph("g")
        g.add(compute("first", "d0"))
        g.add(compute("low", "d0"))
        g.add(compute("high", "d0"))
        g.add(compute("after_high", "d1"), ["high"])
        durations = {"first": 1.0, "low": 5.0, "high": 1.0,
                     "after_high": 5.0}
        priorities = {"first": 0, "high": 1, "low": 2, "after_high": 3}
        res = Simulator(MappingCostModel(durations)).run(
            g, priorities=priorities)
        # high (priority 1) runs before low -> after_high finishes at 7
        assert res.makespan == pytest.approx(7.0)

    def test_strict_mode_head_blocking(self):
        """Strict order: a ready op waits for the earlier-priority op on
        its resource even though the resource is free."""
        g = DistGraph("g")
        g.add(compute("a", "d1"))
        g.add(compute("b", "d0"), ["a"])   # priority 1, ready at t=1
        g.add(compute("c", "d0"))          # priority 2, ready at t=0
        durations = {"a": 1.0, "b": 1.0, "c": 1.0}
        priorities = {"a": 0, "b": 1, "c": 2}
        relaxed = Simulator(MappingCostModel(durations)).run(
            g, priorities=priorities)
        strict = Simulator(MappingCostModel(durations)).run(
            g, priorities=priorities, strict=True)
        assert relaxed.makespan == pytest.approx(2.0)  # c fills the idle d0
        assert strict.makespan == pytest.approx(3.0)   # d0 waits for b

    def test_duplicate_distop_rejected(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            g.add(compute("a", "d0"))

    def test_cycle_in_dist_graph_detected(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d0"), ["a"])
        g._succ["b"].append("a")
        g._pred["a"].append("b")
        from repro.errors import CompileError
        with pytest.raises(CompileError):
            g.topological_order()


class TestCostProviders:
    def test_truth_jitter_deterministic_per_seed(self, mlp_graph, four_gpu):
        from repro.parallel import GraphCompiler, single_device_strategy
        profile = Profiler(seed=0).profile(mlp_graph, four_gpu)
        compiler = GraphCompiler(four_gpu, profile)
        dist = compiler.compile(mlp_graph,
                                single_device_strategy(mlp_graph, four_gpu))
        a = Simulator(TruthCostModel(four_gpu, seed=5)).run(dist).makespan
        b = Simulator(TruthCostModel(four_gpu, seed=5)).run(dist).makespan
        assert a == b

    def test_interserver_discount_slows_cross_traffic(self, four_gpu):
        fast = TruthCostModel(four_gpu, jitter_sigma=0,
                              interserver_discount=1.0)
        slow = TruthCostModel(four_gpu, jitter_sigma=0,
                              interserver_discount=0.5)
        t = DistOp(name="t", kind=DistOpKind.TRANSFER, src_device="gpu0",
                   dst_device="gpu2", size_bytes=100e6)
        assert slow.duration(t) > fast.duration(t)

    def test_invalid_discount_rejected(self, four_gpu):
        with pytest.raises(SimulationError):
            TruthCostModel(four_gpu, interserver_discount=0.0)

    def test_mapping_cost_requires_registration(self):
        cost = MappingCostModel({})
        with pytest.raises(SimulationError):
            cost.duration(compute("x", "d0"))

    def test_profile_cost_unknown_kind(self, mlp_graph, four_gpu):
        profile = Profiler(seed=0).profile(mlp_graph, four_gpu)
        cost = ProfileCostModel(four_gpu, profile)
        op = DistOp(name="t", kind=DistOpKind.TRANSFER, src_device="gpu0",
                    dst_device="gpu1", size_bytes=1024)
        assert cost.duration(op) > 0


class TestBandwidthAdaptation:
    """Footnote 1: 'If the bandwidth changes, the input to the GNN changes
    and the output strategy changes correspondingly.'"""

    @staticmethod
    def _cluster(nic_gbps: float) -> Cluster:
        nic = LinkSpec(f"{nic_gbps}GbE", nic_gbps * GBPS, 6e-6)
        return Cluster([
            ServerSpec("s0", TESLA_V100, 2, nic, intra_link=NVLINK),
            ServerSpec("s1", TESLA_V100, 2, nic, intra_link=NVLINK),
        ])

    def test_features_reflect_bandwidth(self):
        from repro.agent import FeatureEncoder
        graph = make_mlp(name="bw_mlp")
        fast = self._cluster(100)
        slow = self._cluster(5)
        f_fast = FeatureEncoder(
            fast, Profiler(seed=0).profile(graph, fast)).encode(graph)
        f_slow = FeatureEncoder(
            slow, Profiler(seed=0).profile(graph, slow)).encode(graph)
        assert not np.allclose(f_fast, f_slow)

    def test_transfer_predictions_scale(self):
        graph = make_mlp(name="bw_mlp2")
        fast = self._cluster(100)
        slow = self._cluster(5)
        p_fast = Profiler(seed=0).profile(graph, fast)
        p_slow = Profiler(seed=0).profile(graph, slow)
        t_fast = p_fast.transfer_time("gpu0", "gpu2", 100e6)
        t_slow = p_slow.transfer_time("gpu0", "gpu2", 100e6)
        assert t_slow > 5 * t_fast
