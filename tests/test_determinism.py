"""End-to-end determinism: every stochastic component is seed-driven."""

import pytest

from repro.cluster import cluster_4gpu
from repro.baselines import dp_strategy, post_strategy
from repro.experiments import ExperimentContext
from repro.profiling import Profiler

from tests.helpers import make_mlp


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


def test_profile_then_measure_reproducible(four_gpu):
    """Same seeds end to end -> identical measured iteration time."""
    def run():
        g = make_mlp(name="det_e2e")
        ctx = ExperimentContext(four_gpu, seed=11)
        return ctx.measure(g, dp_strategy("CP-AR", g, four_gpu), "CP-AR").time

    assert run() == run()


def test_engine_seed_changes_measurement(four_gpu):
    g = make_mlp(name="det_e2e2")
    a = ExperimentContext(four_gpu, seed=1)
    b = ExperimentContext(four_gpu, seed=2)
    ta = a.measure(g, dp_strategy("CP-AR", g, four_gpu), "CP-AR").time
    tb = b.measure(g, dp_strategy("CP-AR", g, four_gpu), "CP-AR").time
    assert ta != tb
    assert ta == pytest.approx(tb, rel=0.2)  # jitter, not chaos


def test_heterog_search_reproducible(four_gpu):
    from repro.agent import AgentConfig

    cfg = AgentConfig(max_groups=8, gat_hidden=16, gat_layers=2,
                      gat_heads=2, strategy_dim=16, strategy_heads=2,
                      strategy_layers=1, seed=5)

    def run():
        g = make_mlp(name="det_search")
        ctx = ExperimentContext(four_gpu, seed=5)
        return ctx.run_heterog(g, episodes=6, agent_config=cfg).time

    assert run() == run()


def test_post_search_independent_of_call_order(four_gpu):
    """Searches must not leak RNG state between invocations."""
    g1 = make_mlp(name="det_post1")
    g2 = make_mlp(name="det_post2", layers=2)
    t_alone = post_strategy(g1, four_gpu, seed=9, rounds=2)
    post_strategy(g2, four_gpu, seed=1, rounds=2)  # interleaved other work
    t_again = post_strategy(g1, four_gpu, seed=9, rounds=2)
    mix_a = t_alone.strategy_mix()
    mix_b = t_again.strategy_mix()
    assert mix_a == mix_b


def test_profiler_noise_isolated_per_seed(four_gpu):
    g = make_mlp(name="det_prof")
    p1 = Profiler(seed=3).profile(g, four_gpu)
    p2 = Profiler(seed=3).profile(g, four_gpu)
    name = g.op_names[5]
    assert p1.op_time(name, "gpu2") == p2.op_time(name, "gpu2")


def test_faulted_run_reproducible(four_gpu):
    """Same seed + same fault schedule -> identical simulated timeline,
    including detection iterations and the post-replan deployment."""
    from repro.agent import AgentConfig
    from repro.profiling import Profiler
    from repro.resilience import (
        FaultInjector,
        FaultSchedule,
        Replanner,
        ResilientTrainer,
    )
    from repro.runtime import ExecutionEngine
    from repro.runtime.deployment import build_deployment

    cfg = AgentConfig(max_groups=8, gat_hidden=16, gat_layers=2,
                      gat_heads=2, strategy_dim=16, strategy_heads=2,
                      strategy_layers=1, seed=5)

    def run():
        g = make_mlp(name="det_faults")
        profile = Profiler(seed=0).profile(g, four_gpu)
        deployment = build_deployment(
            g, four_gpu, dp_strategy("CP-AR", g, four_gpu),
            profile=profile)
        injector = FaultInjector(
            four_gpu,
            FaultSchedule.parse("straggler:gpu3@1x2.0, crash:gpu1@3"))
        engine = ExecutionEngine(four_gpu, seed=21,
                                 fault_injector=injector)
        replanner = Replanner(g, four_gpu, agent_config=cfg,
                              episodes=2, seed=5)
        trainer = ResilientTrainer(deployment, injector, engine=engine,
                                   replanner=replanner)
        report = trainer.run(6)
        return (
            report.iteration_times,
            [(d.iteration, d.kind, d.resource) for d in report.detections],
            trainer.deployment.strategy.strategy_mix(),
        )

    assert run() == run()


def test_empty_fault_schedule_is_inert(four_gpu):
    """An injector with no faults leaves the engine's RNG stream and
    timeline bit-identical to a run without any injector."""
    from repro.profiling import Profiler
    from repro.resilience import FaultInjector, FaultSchedule
    from repro.runtime import ExecutionEngine
    from repro.runtime.deployment import build_deployment

    g = make_mlp(name="det_inert")
    profile = Profiler(seed=0).profile(g, four_gpu)
    deployment = build_deployment(
        g, four_gpu, dp_strategy("CP-AR", g, four_gpu), profile=profile)

    def run(injector):
        engine = ExecutionEngine(four_gpu, seed=13,
                                 fault_injector=injector)
        stats = engine.measure(deployment.dist, deployment.schedule,
                               deployment.resident_bytes, iterations=4)
        return stats.times

    assert run(None) == \
        run(FaultInjector(four_gpu, FaultSchedule.empty()))
