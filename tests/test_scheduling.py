"""Tests for ranks, list scheduling, FIFO, and the appendix theorems."""

import pytest

from repro.parallel.distgraph import DistGraph, DistOp, DistOpKind
from repro.scheduling import (
    FifoScheduler,
    ListScheduler,
    compute_ranks,
    critical_path,
    optimal_lower_bound,
    total_work,
    worst_case_instance,
)
from repro.simulation import Simulator
from repro.simulation.costs import MappingCostModel


def compute(name, device):
    return DistOp(name=name, kind=DistOpKind.COMPUTE, device=device)


def diamond():
    g = DistGraph("g")
    g.add(compute("a", "d0"))
    g.add(compute("b", "d0"), ["a"])
    g.add(compute("c", "d1"), ["a"])
    g.add(compute("d", "d0"), ["b", "c"])
    return g


class TestRanks:
    def test_rank_definition(self):
        g = diamond()
        cost = MappingCostModel({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        ranks = compute_ranks(g, cost)
        assert ranks["d"] == pytest.approx(4.0)
        assert ranks["b"] == pytest.approx(6.0)
        assert ranks["c"] == pytest.approx(7.0)
        assert ranks["a"] == pytest.approx(8.0)

    def test_rank_is_monotone_along_edges(self):
        g = diamond()
        cost = MappingCostModel({}, default=1.0)
        ranks = compute_ranks(g, cost)
        for name in g.op_names:
            for succ in g.successors(name):
                assert ranks[name] > ranks[succ]


class TestSchedulers:
    def test_list_schedule_priorities_follow_ranks(self):
        g = diamond()
        cost = MappingCostModel({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        schedule = ListScheduler().schedule(g, cost)
        assert not schedule.is_fifo
        assert schedule.estimated_makespan is not None
        if schedule.chosen == "rank":
            # higher rank -> smaller priority number
            assert schedule.priorities["a"] < schedule.priorities["c"]
            assert schedule.priorities["c"] < schedule.priorities["b"]

    def test_fifo_scheduler_randomized_default(self):
        """The default models TF's nondeterministic executor order."""
        schedule = FifoScheduler(seed=1).schedule(diamond())
        assert schedule.priorities is not None
        assert set(schedule.priorities) == set(diamond().op_names)

    def test_fifo_scheduler_arrival_mode(self):
        schedule = FifoScheduler(randomize=False).schedule(diamond())
        assert schedule.is_fifo
        assert schedule.priorities is None

    def test_list_beats_bad_order_on_contention(self):
        """Classic trap: a long chain's head must run before a filler op."""
        g = DistGraph("g")
        g.add(compute("filler", "d0"))
        g.add(compute("head", "d0"))
        g.add(compute("tail1", "d1"), ["head"])
        g.add(compute("tail2", "d1"), ["tail1"])
        cost = MappingCostModel(
            {"filler": 3.0, "head": 1.0, "tail1": 3.0, "tail2": 3.0}
        )
        schedule = ListScheduler().schedule(g, cost)
        sim = Simulator(cost)
        ls = sim.run(g, priorities=schedule.priorities)
        fifo = sim.run(g, priorities=None)  # insertion order: filler first
        assert ls.makespan == pytest.approx(7.0)
        assert fifo.makespan == pytest.approx(10.0)
        assert ls.makespan < fifo.makespan


class TestBounds:
    def test_total_work_and_critical_path(self):
        g = diamond()
        cost = MappingCostModel({"a": 1.0, "b": 2.0, "c": 3.0, "d": 4.0})
        assert total_work(g, cost) == pytest.approx(10.0)
        assert critical_path(g, cost) == pytest.approx(8.0)

    def test_lower_bound(self):
        g = diamond()
        cost = MappingCostModel({}, default=1.0)
        lb = optimal_lower_bound(g, cost, num_resources=2)
        assert lb == pytest.approx(max(4 / 2, 3))

    def test_theorem1_ls_within_total_work(self):
        """TLS <= sum p_i (first inequality of the Theorem 1 proof)."""
        inst = worst_case_instance(h=4, k=8)
        schedule_time = Simulator(inst.cost).run(
            inst.graph, priorities=inst.priorities
        ).makespan
        assert schedule_time <= total_work(inst.graph, inst.cost) + 1e-9

    def test_theorem2_formulas_match_simulation(self):
        """The crafted instance's simulated strict-order LS time is within
        a few percent of the appendix closed form, and the TLS/T* ratio
        approaches H = M + M^2."""
        h, k = 4, 30
        inst = worst_case_instance(h=h, k=k, p=1.0, e=1e-6)
        res = Simulator(inst.cost).run(inst.graph,
                                       priorities=inst.priorities,
                                       strict=True)
        assert res.makespan == pytest.approx(inst.t_ls_formula, rel=0.05)
        ratio = res.makespan / inst.t_opt_formula
        # ratio -> H as k grows and e -> 0
        assert ratio == pytest.approx(h, rel=0.05)

    def test_worst_case_benign_without_adversarial_order(self):
        """Work-conserving execution of the same instance stays near T*:
        the pathology needs both the adversarial ties and strict order."""
        inst = worst_case_instance(h=4, k=30, p=1.0, e=1e-6)
        res = Simulator(inst.cost).run(inst.graph,
                                       priorities=inst.priorities)
        assert res.makespan < 0.9 * inst.t_ls_formula

    def test_strict_requires_priorities(self):
        inst = worst_case_instance(h=3, k=3)
        from repro.errors import SimulationError
        with pytest.raises(SimulationError):
            Simulator(inst.cost).run(inst.graph, strict=True)

    def test_theorem2_ratio_grows_with_h(self):
        r3 = worst_case_instance(h=3, k=20).ratio_formula
        r5 = worst_case_instance(h=5, k=20).ratio_formula
        assert r5 > r3

    def test_optimal_beats_ls_on_worst_case(self):
        inst = worst_case_instance(h=4, k=10)
        assert inst.t_opt_formula < inst.t_ls_formula

    def test_worst_case_validation(self):
        with pytest.raises(ValueError):
            worst_case_instance(h=2)
        with pytest.raises(ValueError):
            worst_case_instance(h=4, k=1)
