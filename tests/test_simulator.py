"""Tests for the discrete-event simulator on hand-built dist graphs."""

import pytest

from repro.errors import SimulationError
from repro.parallel.distgraph import DistGraph, DistOp, DistOpKind
from repro.simulation import Simulator
from repro.simulation.costs import MappingCostModel
from repro.simulation.metrics import union_length


def compute(name, device):
    return DistOp(name=name, kind=DistOpKind.COMPUTE, device=device)


def transfer(name, src, dst, size=0.0):
    return DistOp(name=name, kind=DistOpKind.TRANSFER, src_device=src,
                  dst_device=dst, size_bytes=size)


def run(graph, durations, priorities=None, default=None):
    sim = Simulator(MappingCostModel(durations, default=default))
    return sim.run(graph, priorities=priorities)


class TestBasicExecution:
    def test_chain_serializes(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d0"), ["a"])
        g.add(compute("c", "d0"), ["b"])
        res = run(g, {"a": 1.0, "b": 2.0, "c": 3.0})
        assert res.makespan == pytest.approx(6.0)

    def test_independent_ops_on_different_devices_overlap(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d1"))
        res = run(g, {"a": 5.0, "b": 3.0})
        assert res.makespan == pytest.approx(5.0)

    def test_same_device_serializes(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d0"))
        res = run(g, {"a": 5.0, "b": 3.0})
        assert res.makespan == pytest.approx(8.0)

    def test_dependency_respected(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d1"), ["a"])
        res = run(g, {"a": 2.0, "b": 1.0})
        assert res.makespan == pytest.approx(3.0)

    def test_empty_graph(self):
        res = run(DistGraph("g"), {})
        assert res.makespan == 0.0

    def test_negative_duration_rejected(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        with pytest.raises(SimulationError):
            run(g, {"a": -1.0})


class TestCommunicationOverlap:
    def test_compute_comm_overlap(self):
        """A transfer on a link runs concurrently with compute on GPUs."""
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(transfer("t", "d0", "d1"), ["a"])
        g.add(compute("b", "d0"), ["a"])      # keeps d0 busy during t
        g.add(compute("c", "d1"), ["t"])
        res = run(g, {"a": 1.0, "t": 4.0, "b": 4.0, "c": 1.0})
        assert res.makespan == pytest.approx(6.0)  # t and b overlap
        assert res.communication_time == pytest.approx(4.0)

    def test_link_serializes_transfers(self):
        g = DistGraph("g")
        g.add(transfer("t1", "d0", "d1"))
        g.add(transfer("t2", "d0", "d1"))
        res = run(g, {"t1": 2.0, "t2": 2.0})
        assert res.makespan == pytest.approx(4.0)

    def test_opposite_directions_parallel(self):
        g = DistGraph("g")
        g.add(transfer("t1", "d0", "d1"))
        g.add(transfer("t2", "d1", "d0"))
        res = run(g, {"t1": 2.0, "t2": 2.0})
        assert res.makespan == pytest.approx(2.0)

    def test_nccl_token_serializes_allreduces(self):
        g = DistGraph("g")
        g.add(DistOp(name="ar1", kind=DistOpKind.ALLREDUCE,
                     devices=("d0", "d1")))
        g.add(DistOp(name="ar2", kind=DistOpKind.ALLREDUCE,
                     devices=("d2", "d3")))
        # disjoint device rings but the shared NCCL token forces serial
        res = run(g, {"ar1": 3.0, "ar2": 3.0})
        assert res.makespan == pytest.approx(6.0)

    def test_extra_resources_respected(self):
        g = DistGraph("g")
        g.add(DistOp(name="t1", kind=DistOpKind.TRANSFER, src_device="a",
                     dst_device="b", extra_resources=("nic_out:s0",)))
        g.add(DistOp(name="t2", kind=DistOpKind.TRANSFER, src_device="a",
                     dst_device="c", extra_resources=("nic_out:s0",)))
        res = run(g, {"t1": 2.0, "t2": 2.0})
        # different links but shared NIC -> serialized
        assert res.makespan == pytest.approx(4.0)


class TestPriorities:
    def _contention_graph(self):
        """Two ready ops on one device; 'slow' blocks the critical path."""
        g = DistGraph("g")
        g.add(compute("slow_chain_head", "d0"))
        g.add(compute("filler", "d0"))
        g.add(compute("tail", "d1"), ["slow_chain_head"])
        return g

    def test_priority_orders_contention(self):
        g = self._contention_graph()
        durations = {"slow_chain_head": 2.0, "filler": 2.0, "tail": 3.0}
        good = run(g, durations,
                   priorities={"slow_chain_head": 0, "filler": 1, "tail": 2})
        bad = run(g, durations,
                  priorities={"slow_chain_head": 1, "filler": 0, "tail": 2})
        assert good.makespan == pytest.approx(5.0)
        assert bad.makespan == pytest.approx(7.0)

    def test_fifo_is_insertion_order_at_t0(self):
        g = self._contention_graph()
        durations = {"slow_chain_head": 2.0, "filler": 2.0, "tail": 3.0}
        res = run(g, durations, priorities=None)
        # FIFO starts slow_chain_head first (inserted first)
        assert res.makespan == pytest.approx(5.0)


class TestMetrics:
    def test_device_busy_accounting(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d0"), ["a"])
        res = run(g, {"a": 1.5, "b": 2.5})
        assert res.device_busy["d0"] == pytest.approx(4.0)
        assert res.computation_time == pytest.approx(4.0)

    def test_utilization(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d1"), ["a"])
        res = run(g, {"a": 1.0, "b": 1.0})
        util = res.utilization()
        assert util["d0"] == pytest.approx(0.5)

    def test_union_length(self):
        assert union_length([(0, 2), (1, 3), (5, 6)]) == pytest.approx(4.0)
        assert union_length([]) == 0.0

    def test_trace_schedule(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(compute("b", "d0"), ["a"])
        sim = Simulator(MappingCostModel({"a": 1.0, "b": 1.0}))
        res = sim.run(g, trace=True)
        assert res.schedule["a"] == (0.0, 1.0)
        assert res.schedule["b"] == (1.0, 2.0)

    def test_overlap_ratio_bounds(self):
        g = DistGraph("g")
        g.add(compute("a", "d0"))
        g.add(transfer("t", "d0", "d1"), ["a"])
        res = run(g, {"a": 1.0, "t": 1.0})
        assert 0.0 < res.overlap_ratio <= 2.0
