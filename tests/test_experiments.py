"""Tests for the experiment harness (fast, tiny-scale invocations)."""

import pytest

from repro.cluster import cluster_4gpu
from repro.experiments import (
    ExperimentContext,
    bench_agent_config,
    fig3b_op_speedups,
    format_table,
    paper_values,
)
from repro.experiments.tables import _batch_for, mp_fraction
from repro.graph.models import build_model


class TestCommon:
    def test_format_table_alignment(self):
        out = format_table(["A", "Bee"], [["1", "2"], ["333", "4"]])
        lines = out.splitlines()
        assert len(lines) == 4
        assert all(len(line) == len(lines[0]) for line in lines)

    def test_measure_roundtrip(self, four_gpu):
        from repro.baselines import dp_strategy
        g = build_model("vgg19", "tiny")
        ctx = ExperimentContext(four_gpu, seed=0)
        m = ctx.measure(g, dp_strategy("CP-AR", g, four_gpu), "CP-AR")
        assert m.time > 0 and not m.oom
        assert m.extras["computation_time"] > 0
        assert "CP-AR" in m.mix

    def test_profile_cached(self, four_gpu):
        g = build_model("vgg19", "tiny")
        ctx = ExperimentContext(four_gpu, seed=0)
        assert ctx.profile(g) is ctx.profile(g)

    def test_run_heterog_records_search_stats(self, four_gpu):
        ctx = ExperimentContext(four_gpu, seed=0)
        g = build_model("transformer", "tiny")
        m = ctx.run_heterog(g, episodes=6,
                            agent_config=_tiny_agent_config())
        assert not m.oom
        assert m.extras["search_seconds"] > 0
        assert m.extras["simulated_time"] > 0

    def test_batch_for_scales(self):
        assert _batch_for("vgg19", 8) == {}
        assert _batch_for("vgg19", 12) == {"batch_size": 288}
        assert _batch_for("transformer", 12) == {"batch_size": 1080}

    def test_mp_fraction(self):
        assert mp_fraction({"MP:gpu0": 0.2, "CP-AR": 0.8}) == pytest.approx(0.2)


def _tiny_agent_config():
    cfg = bench_agent_config(0)
    cfg.max_groups = 8
    cfg.gat_hidden = 16
    cfg.strategy_dim = 16
    return cfg


class TestFig3b:
    def test_ratios_positive_and_bounded(self):
        points = fig3b_op_speedups(seed=1)
        assert len(points) == 5
        for p in points:
            assert all(0.8 < r < 3.0 for r in p.normalized_times)

    def test_deterministic(self):
        a = fig3b_op_speedups(seed=2)
        b = fig3b_op_speedups(seed=2)
        assert [p.mean for p in a] == [p.mean for p in b]


class TestPaperValues:
    def test_table1_rows_complete(self):
        assert len(paper_values.TABLE1) == 8
        for vals in paper_values.TABLE1.values():
            assert len(vals) == 5
            # HeteroG (first) is the fastest in every paper row
            assert vals[0] == min(vals)

    def test_speedup_helper(self):
        assert paper_values.speedup(0.907, 0.462) == pytest.approx(
            0.963, abs=0.001)

    def test_table5_consistent_with_table1(self):
        """Paper cross-check: Table 5's 8-GPU HeteroG minutes divided by
        Table 1 per-iteration times give a consistent iteration count."""
        t1 = paper_values.TABLE1["vgg19"][0]
        t5 = paper_values.TABLE5["vgg19"][8][0]
        iterations = t5 * 60 / t1
        assert iterations == pytest.approx(66640, rel=0.01)


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()
