"""Tests for the cost model, measurements, regressions, and Profiler."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.cluster import GTX_1080TI, TESLA_V100, cluster_4gpu
from repro.errors import ProfilingError
from repro.graph.op import Operation, TensorSpec
from repro.profiling import (
    MeasurementNoise,
    OpTimeRegression,
    Profiler,
    TransferTimeRegression,
    exact_profile,
    op_class,
    op_time,
)
from repro.profiling.cost_model import bytes_touched, op_memory_bytes


def conv_op(flops=1e10, out=(32, 56, 56, 64)):
    return Operation("c", "Conv2D", TensorSpec(out), flops=flops,
                     param_bytes=1024)


class TestOpClass:
    def test_known_types(self):
        assert op_class("Conv2D") == "conv"
        assert op_class("MatMul") == "gemm"
        assert op_class("Relu") == "elementwise"
        assert op_class("MaxPool") == "reduce"

    def test_backward_classes(self):
        # conv backward kernels have dedicated classes (Fig. 3(b) spread)
        assert op_class("Conv2DBpInput") == "conv_bp_input"
        assert op_class("Conv2DBpFilter") == "conv_bp_filter"
        # other backward ops inherit the forward class
        assert op_class("MatMulBpFilter") == "gemm"
        assert op_class("ReluBpInput") == "elementwise"

    def test_unknown_defaults_other(self):
        assert op_class("SomethingNew") == "other"


class TestOpTime:
    def test_faster_gpu_faster_for_compute_bound(self):
        op = conv_op(flops=1e11)
        assert op_time(op, TESLA_V100) < op_time(op, GTX_1080TI)

    def test_compute_bound_ratio_matches_fig3b(self):
        """Large Conv2D: the calibrated ~1.9x of Fig. 3(b)."""
        op = conv_op(flops=1e12)
        ratio = op_time(op, GTX_1080TI) / op_time(op, TESLA_V100)
        assert 1.7 <= ratio <= 2.0

    def test_tiny_op_overhead_bound(self):
        op = Operation("r", "Relu", TensorSpec((1, 4)), flops=4.0)
        ratio = op_time(op, GTX_1080TI) / op_time(op, TESLA_V100)
        assert ratio < 1.5  # launch-overhead regime: small gap

    def test_batch_fraction_scales_time_down(self):
        op = conv_op(flops=1e11)
        assert op_time(op, TESLA_V100, 0.25) < op_time(op, TESLA_V100, 1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            op_time(conv_op(), TESLA_V100, 0.0)

    @given(st.floats(0.1, 1.0), st.floats(0.1, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_monotone_in_fraction(self, f1, f2):
        op = conv_op(flops=1e11)
        lo, hi = sorted([f1, f2])
        assert op_time(op, TESLA_V100, lo) <= op_time(op, TESLA_V100, hi) + 1e-12

    def test_bytes_touched_scales_with_fraction(self):
        op = conv_op()
        assert bytes_touched(op, 0.5) < bytes_touched(op, 1.0)

    def test_memory_bytes_unbatched_full(self):
        from repro.profiling.cost_model import ACTIVATION_OVERHEAD
        op = Operation("g", "Conv2DBpFilter",
                       TensorSpec((256,), batch_dim=None),
                       flops=1e9, batch_scaled=True)
        # unbatched output: no batch-fraction scaling, overhead applies
        assert op_memory_bytes(op, 0.25) == int(
            op.output.size_bytes * ACTIVATION_OVERHEAD)


class TestRegressions:
    def test_op_regression_recovers_linear(self):
        fractions = [0.25, 0.5, 1.0]
        times = [0.5 * f + 0.1 for f in fractions]
        reg = OpTimeRegression.fit(fractions, times)
        assert reg.predict(0.75) == pytest.approx(0.475, rel=1e-6)

    def test_op_regression_floor(self):
        reg = OpTimeRegression(slope=-1.0, intercept=0.0)
        assert reg.predict(1.0) == 1e-9

    def test_op_regression_rejects_empty(self):
        with pytest.raises(ProfilingError):
            OpTimeRegression.fit([], [])

    def test_op_regression_rejects_nonpositive_fraction(self):
        reg = OpTimeRegression.fit([0.5, 1.0], [1.0, 2.0])
        with pytest.raises(ProfilingError):
            reg.predict(0.0)

    def test_transfer_regression_recovers_bandwidth(self):
        sizes = [1e6, 1e7, 1e8]
        bw, lat = 5e9, 1e-5
        times = [lat + s / bw for s in sizes]
        reg = TransferTimeRegression.fit(sizes, times)
        assert reg.bandwidth == pytest.approx(bw, rel=1e-6)
        assert reg.latency == pytest.approx(lat, rel=1e-3)

    def test_transfer_regression_negative_size(self):
        reg = TransferTimeRegression.fit([1e6, 1e7], [0.1, 0.2])
        with pytest.raises(ProfilingError):
            reg.predict(-1)

    @given(st.floats(1e8, 1e10), st.floats(1e-6, 1e-4))
    @settings(max_examples=20, deadline=None)
    def test_transfer_fit_roundtrip(self, bandwidth, latency):
        sizes = [1e5, 1e6, 1e7, 1e8]
        times = [latency + s / bandwidth for s in sizes]
        reg = TransferTimeRegression.fit(sizes, times)
        for s in sizes:
            assert reg.predict(s) == pytest.approx(times[sizes.index(s)],
                                                   rel=1e-6)


class TestProfiler:
    def test_profile_covers_all_ops_and_links(self, mlp_graph, four_gpu,
                                              mlp_profile):
        models = {d.spec.model for d in four_gpu.devices}
        assert len(mlp_profile.op_models) == len(mlp_graph) * len(models)
        assert len(mlp_profile.link_models) == 4 * 3

    def test_predictions_close_to_truth(self, mlp_graph, four_gpu):
        profile = exact_profile(mlp_graph, four_gpu)
        spec = four_gpu.device("gpu0").spec
        for op in mlp_graph:
            pred = profile.op_time(op.name, "gpu0", 1.0)
            truth = op_time(op, spec, 1.0)
            assert pred == pytest.approx(truth, rel=0.15)

    def test_noise_changes_predictions(self, mlp_graph, four_gpu):
        noisy = Profiler(noise=MeasurementNoise(0.1), seed=1).profile(
            mlp_graph, four_gpu
        )
        exact = exact_profile(mlp_graph, four_gpu)
        diffs = [
            abs(noisy.op_time(op.name, "gpu0") - exact.op_time(op.name, "gpu0"))
            for op in mlp_graph
        ]
        assert max(diffs) > 0

    def test_deterministic_given_seed(self, mlp_graph, four_gpu):
        p1 = Profiler(seed=42).profile(mlp_graph, four_gpu)
        p2 = Profiler(seed=42).profile(mlp_graph, four_gpu)
        name = mlp_graph.op_names[3]
        assert p1.op_time(name, "gpu0") == p2.op_time(name, "gpu0")

    def test_unknown_op_rejected(self, mlp_profile):
        with pytest.raises(ProfilingError):
            mlp_profile.op_time("nope", "gpu0")

    def test_unknown_device_rejected(self, mlp_profile, mlp_graph):
        with pytest.raises(ProfilingError):
            mlp_profile.op_time(mlp_graph.op_names[0], "gpu77")

    def test_transfer_self_is_zero(self, mlp_profile):
        assert mlp_profile.transfer_time("gpu0", "gpu0", 1e6) == 0.0

    def test_transfer_positive(self, mlp_profile):
        assert mlp_profile.transfer_time("gpu0", "gpu2", 1e6) > 0
