"""Tests for ``repro.telemetry``: registry, tracer, critical path, and
the no-op guarantees when telemetry is disabled."""

import json
import threading

import pytest

from repro import telemetry
from repro.cluster import cluster_4gpu
from repro.parallel import GraphCompiler, single_device_strategy
from repro.parallel.distgraph import DistGraph, DistOp, DistOpKind
from repro.profiling import exact_profile
from repro.simulation import ProfileCostModel, Simulator
from repro.simulation.metrics import SimulationResult
from repro.telemetry import (
    IDLE_KEY,
    MetricsRegistry,
    Tracer,
    critical_path,
)

from tests.helpers import make_mlp


# --------------------------------------------------------------------- #
class TestRegistry:
    def test_counter_and_gauge(self):
        reg = MetricsRegistry()
        reg.counter("runs").inc()
        reg.counter("runs").inc(2)
        assert reg.counter("runs").value == 3
        with pytest.raises(ValueError):
            reg.counter("runs").inc(-1)
        reg.gauge("depth").set(4.5)
        reg.gauge("depth").dec(0.5)
        assert reg.gauge("depth").value == 4.0

    def test_labels_address_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("waits", labels={"resource": "gpu0"}).inc(1)
        reg.counter("waits", labels={"resource": "gpu1"}).inc(5)
        assert reg.counter("waits", labels={"resource": "gpu0"}).value == 1
        assert len(reg) == 2

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError):
            reg.gauge("x")

    def test_histogram_bucketing(self):
        reg = MetricsRegistry()
        hist = reg.histogram("lat", buckets=[0.001, 0.01, 0.1, 1.0])
        for value in [0.0005, 0.005, 0.005, 0.05, 0.5, 5.0]:
            hist.observe(value)
        assert hist.total == 6
        assert hist.counts == [1, 2, 1, 1, 1]
        cumulative = dict(hist.cumulative())
        assert cumulative[0.001] == 1
        assert cumulative[0.01] == 3
        assert cumulative[1.0] == 5
        assert cumulative[float("inf")] == 6
        assert hist.min == 0.0005 and hist.max == 5.0
        assert hist.mean == pytest.approx(sum(
            [0.0005, 0.005, 0.005, 0.05, 0.5, 5.0]) / 6)

    def test_histogram_boundary_lands_in_its_bucket(self):
        reg = MetricsRegistry()
        hist = reg.histogram("h", buckets=[1.0, 2.0])
        hist.observe(1.0)  # le semantics: boundary belongs to the bucket
        assert dict(hist.cumulative())[1.0] == 1

    def test_histogram_quantile(self):
        reg = MetricsRegistry()
        hist = reg.histogram("q", buckets=[1, 2, 4, 8])
        for v in [0.5, 1.5, 3, 7]:
            hist.observe(v)
        assert hist.quantile(0.5) == 2
        assert hist.quantile(1.0) == 8

    def test_prometheus_exposition(self):
        reg = MetricsRegistry()
        reg.counter("ops_total", labels={"kind": "compute"},
                    help="ops done").inc(7)
        reg.histogram("dur", buckets=[0.1, 1.0]).observe(0.05)
        text = reg.to_prometheus()
        assert "# TYPE ops_total counter" in text
        assert 'ops_total{kind="compute"} 7.0' in text
        assert 'dur_bucket{le="0.1"} 1' in text
        assert 'dur_bucket{le="+Inf"} 1' in text
        assert "dur_count 1" in text

    def test_json_roundtrip(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("g").set(2.0)
        reg.histogram("h", buckets=[1.0]).observe(0.5)
        path = tmp_path / "metrics.json"
        reg.save_json(str(path))
        data = json.loads(path.read_text())
        by_name = {m["name"]: m for m in data["metrics"]}
        assert by_name["g"]["value"] == 2.0
        assert by_name["h"]["count"] == 1
        assert by_name["h"]["buckets"][-1]["le"] == "+Inf"


# --------------------------------------------------------------------- #
class TestTracer:
    def test_span_nesting_and_export(self):
        tracer = Tracer()
        with tracer.span("outer", model="mlp"):
            with tracer.span("inner"):
                pass
            with tracer.span("inner2"):
                pass
        events = tracer.to_events()
        assert [e["name"] for e in events] == ["outer", "inner", "inner2"]
        outer = next(e for e in events if e["name"] == "outer")
        inner = next(e for e in events if e["name"] == "inner")
        assert inner["parent_id"] == outer["span_id"]
        assert outer["parent_id"] is None
        assert outer["attrs"] == {"model": "mlp"}
        assert all(e["duration"] >= 0 for e in events)

    def test_span_tree(self):
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child"):
                with tracer.span("grandchild"):
                    pass
        tree = tracer.span_tree()
        assert len(tree) == 1
        assert tree[0]["name"] == "root"
        assert tree[0]["children"][0]["name"] == "child"
        assert tree[0]["children"][0]["children"][0]["name"] == "grandchild"

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        with tracer.span("x"):
            pass
        assert len(tracer) == 0

    def test_error_annotated(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("bad"):
                raise RuntimeError("boom")
        (event,) = tracer.to_events()
        assert event["attrs"]["error"] == "RuntimeError"

    def test_jsonl_export(self, tmp_path):
        tracer = Tracer()
        with tracer.span("a", k=1):
            pass
        path = tmp_path / "spans.jsonl"
        tracer.save_jsonl(str(path))
        lines = path.read_text().splitlines()
        assert len(lines) == 1
        assert json.loads(lines[0])["name"] == "a"

    def test_threads_trace_independently(self):
        tracer = Tracer()

        def work():
            with tracer.span("worker"):
                pass

        threads = [threading.Thread(target=work) for _ in range(4)]
        with tracer.span("main"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        events = tracer.to_events()
        workers = [e for e in events if e["name"] == "worker"]
        # worker spans must not be parented under another thread's span
        assert len(workers) == 4
        assert all(w["parent_id"] is None for w in workers)

    def test_chrome_events(self):
        tracer = Tracer()
        with tracer.span("phase", model="mlp"):
            pass
        events = tracer.chrome_events(pid=7)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == 1
        assert slices[0]["pid"] == 7
        assert slices[0]["args"]["model"] == "mlp"
        assert any(e["name"] == "process_name" for e in events)


# --------------------------------------------------------------------- #
def _three_op_chain() -> DistGraph:
    """a(gpu0, 0..1) -> transfer(1..3) -> b(gpu1, 4..6) with an idle gap."""
    g = DistGraph("chain")
    g.add(DistOp("a", DistOpKind.COMPUTE, device="gpu0"))
    g.add(DistOp("t", DistOpKind.TRANSFER, src_device="gpu0",
                 dst_device="gpu1", size_bytes=8.0), deps=["a"])
    g.add(DistOp("b", DistOpKind.COMPUTE, device="gpu1"), deps=["t"])
    return g


class TestCriticalPath:
    def test_blame_on_hand_built_dag(self):
        dist = _three_op_chain()
        result = SimulationResult(
            makespan=6.0,
            schedule={"a": (0.0, 1.0), "t": (1.0, 3.0), "b": (4.0, 6.0)},
        )
        report = critical_path(dist, result)
        assert [s.op for s in report.segments] == ["a", "t", "b"]
        assert report.blame["gpu0"] == pytest.approx(1.0)
        assert report.blame["link:gpu0->gpu1"] == pytest.approx(2.0)
        assert report.blame["gpu1"] == pytest.approx(2.0)
        assert report.blame[IDLE_KEY] == pytest.approx(1.0)
        fractions = report.blame_fractions()
        assert sum(fractions.values()) == pytest.approx(1.0)
        assert report.segments[-1].blocked_by == "t"
        assert report.segments[-1].idle_before == pytest.approx(1.0)
        assert report.straggler() in ("gpu1",)

    def test_resource_contention_blamed(self):
        # two independent ops on one device: the second waits for the
        # first even though there is no DAG edge between them
        g = DistGraph("contend")
        g.add(DistOp("x", DistOpKind.COMPUTE, device="gpu0"))
        g.add(DistOp("y", DistOpKind.COMPUTE, device="gpu0"))
        result = SimulationResult(
            makespan=5.0,
            schedule={"x": (0.0, 2.0), "y": (2.0, 5.0)},
        )
        report = critical_path(g, result)
        assert [s.op for s in report.segments] == ["x", "y"]
        assert report.segments[1].blocked_by == "x"
        assert report.blame["gpu0"] == pytest.approx(5.0)
        assert sum(report.blame_fractions().values()) == pytest.approx(1.0)

    def test_idle_gap_breakdown(self):
        dist = _three_op_chain()
        result = SimulationResult(
            makespan=6.0,
            schedule={"a": (0.0, 1.0), "t": (1.0, 3.0), "b": (4.0, 6.0)},
        )
        report = critical_path(dist, result)
        assert report.per_resource_idle["gpu0"] == pytest.approx(5.0)
        assert report.per_resource_idle["gpu1"] == pytest.approx(4.0)
        assert (4.0, 6.0) not in report.idle_gaps["gpu1"]
        assert (0.0, 4.0) in report.idle_gaps["gpu1"]

    def test_requires_trace(self):
        dist = _three_op_chain()
        with pytest.raises(ValueError):
            critical_path(dist, SimulationResult(makespan=1.0))

    def test_truncated_trace_blames_tail_on_idle(self):
        """A device lost mid-trace leaves the makespan tail uncovered;
        the fractions must still partition [0, makespan]."""
        dist = _three_op_chain()
        # gpu1 died before running "b": the trace stops at t's finish
        # (3.0) but the iteration is still accounted at makespan 6.0
        result = SimulationResult(
            makespan=6.0,
            schedule={"a": (0.0, 1.0), "t": (1.0, 3.0)},
        )
        report = critical_path(dist, result)
        assert [s.op for s in report.segments] == ["a", "t"]
        assert report.blame[IDLE_KEY] == pytest.approx(3.0)
        assert sum(report.blame_fractions().values()) == pytest.approx(1.0)

    def test_on_simulated_run(self):
        cluster = cluster_4gpu()
        graph = make_mlp(name="cp_mlp")
        profile = exact_profile(graph, cluster)
        dist = GraphCompiler(cluster, profile).compile(
            graph, single_device_strategy(graph, cluster))
        result = Simulator(ProfileCostModel(cluster, profile)).run(
            dist, trace=True)
        report = critical_path(dist, result)
        assert sum(report.blame_fractions().values()) == pytest.approx(1.0)
        assert report.segments[0].start == pytest.approx(0.0)
        assert report.segments[-1].end == pytest.approx(result.makespan)


# --------------------------------------------------------------------- #
class TestAmbientSession:
    def test_disabled_by_default(self):
        assert telemetry.active() is None

    def test_session_scopes_enablement(self):
        with telemetry.session() as tel:
            assert telemetry.active() is tel
            with telemetry.span("x"):
                pass
            assert len(tel.tracer) == 1
        assert telemetry.active() is None

    def test_span_is_noop_when_disabled(self):
        with telemetry.span("ignored") as span:
            span.set(k=1)  # must not raise

    def test_simulator_results_identical_with_telemetry_disabled(self):
        """Regression guard: telemetry must never perturb simulation."""
        cluster = cluster_4gpu()
        graph = make_mlp(name="tel_mlp")
        profile = exact_profile(graph, cluster)
        dist = GraphCompiler(cluster, profile).compile(
            graph, single_device_strategy(graph, cluster))
        sim = Simulator(ProfileCostModel(cluster, profile))

        baseline = sim.run(dist, trace=True)
        with telemetry.session():
            instrumented = sim.run(dist, trace=True)
        repeat = sim.run(dist, trace=True)

        for other in (instrumented, repeat):
            assert other.makespan == baseline.makespan
            assert other.schedule == baseline.schedule
            assert other.device_busy == baseline.device_busy
            assert other.link_busy == baseline.link_busy
            assert other.peak_memory == baseline.peak_memory
            assert other.communication_time == baseline.communication_time

    def test_engine_metrics_collected(self):
        cluster = cluster_4gpu()
        graph = make_mlp(name="tel_mlp2")
        profile = exact_profile(graph, cluster)
        dist = GraphCompiler(cluster, profile).compile(
            graph, single_device_strategy(graph, cluster))
        sim = Simulator(ProfileCostModel(cluster, profile))
        with telemetry.session() as tel:
            sim.run(dist)
        reg = tel.registry
        assert reg.counter("sim_runs_total").value == 1
        assert reg.counter("sim_events_total").value == len(dist)
        assert reg.histogram("sim_queue_wait_seconds").total == len(dist)
        spans = tel.tracer.to_events()
        assert [s["name"] for s in spans] == ["simulate"]
