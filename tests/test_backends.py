"""Execution backends: wire protocol, the backend seam, and the
process-fleet failure paths (kill mid-request, re-dispatch,
false-positive heartbeats, drain)."""

import os
import signal
import threading
import time
import warnings

import pytest

from repro.agent import AgentConfig
from repro.baselines import DP_BASELINES, dp_strategy
from repro.cluster import cluster_4gpu
from repro.config import HeteroGConfig
from repro.errors import (
    FleetProtocolError,
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    WorkerLostError,
)
from repro.plan import BatchEvaluator, PlanBuilder
from repro.service import (
    InlineBackend,
    PlanRequest,
    PlanningService,
    ProcessFleetBackend,
    ThreadBackend,
    make_backend,
)
from repro.service.backends import active_fleet
from repro.service.messages import (
    CompletedMessage,
    HeartbeatMessage,
    PlanRequestMessage,
    ShutdownMessage,
    message_from_wire,
    rebuild_error,
)
from repro.telemetry.flight import FlightRecorder

from tests.helpers import make_mlp

FAST = AgentConfig(max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
                   strategy_dim=16, strategy_heads=2, strategy_layers=1)

# fleet knobs tuned for fast, deterministic failure tests
FLEET_KW = dict(heartbeat_interval=0.1, heartbeat_timeout=1.0)


def fast_config(seed: int = 0) -> HeteroGConfig:
    return HeteroGConfig(episodes=2, seed=seed, agent=FAST)


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


@pytest.fixture(scope="module")
def mlp():
    return make_mlp(name="backend_mlp")


def search_request(graph, cluster, *, episodes=2, seed=0, **kw) -> PlanRequest:
    return PlanRequest(graph=graph, cluster=cluster, episodes=episodes,
                       config=fast_config(seed), **kw)


def journal_events(service, rid=None, event=None):
    return [e for e in service.recorder.journal.events(
        request_id=rid, event=event)]


# --------------------------------------------------------------------- #
# wire protocol
class TestMessages:
    def test_round_trip(self):
        msg = PlanRequestMessage(ticket="fp", request=None,
                                 queue_seconds=0.5, stall_seconds=0.0)
        back = message_from_wire(msg.to_wire())
        assert back == msg

    def test_all_types_round_trip(self):
        for msg in (ShutdownMessage(reason="r"),
                    HeartbeatMessage(worker="w0", ts=1.0, served=3),
                    CompletedMessage(ticket="fp", worker="w0",
                                     result=None)):
            assert message_from_wire(msg.to_wire()) == msg

    def test_non_dict_rejected(self):
        with pytest.raises(FleetProtocolError):
            message_from_wire("nope")

    def test_missing_version_rejected(self):
        wire = ShutdownMessage().to_wire()
        del wire["v"]
        with pytest.raises(FleetProtocolError, match="missing 'v'"):
            message_from_wire(wire)

    def test_future_version_rejected(self):
        wire = ShutdownMessage().to_wire()
        wire["v"] = 99
        with pytest.raises(FleetProtocolError, match="version"):
            message_from_wire(wire)

    def test_unknown_type_rejected(self):
        wire = ShutdownMessage().to_wire()
        wire["type"] = "flux_capacitor"
        with pytest.raises(FleetProtocolError, match="unknown message"):
            message_from_wire(wire)

    def test_field_mismatch_rejected(self):
        wire = HeartbeatMessage(worker="w0").to_wire()
        wire["extra"] = 1
        with pytest.raises(FleetProtocolError, match="unexpected"):
            message_from_wire(wire)
        del wire["extra"]
        del wire["served"]
        with pytest.raises(FleetProtocolError, match="missing"):
            message_from_wire(wire)

    def test_rebuild_known_error(self):
        err = rebuild_error("ServiceClosedError", "gone")
        assert isinstance(err, ServiceClosedError)
        assert "gone" in str(err)

    def test_rebuild_structured_error_degrades(self):
        err = rebuild_error("ServiceOverloadedError", "full")
        assert not isinstance(err, ServiceOverloadedError)
        assert isinstance(err, ReproError)
        assert "ServiceOverloadedError" in str(err)

    def test_rebuild_unknown_type_degrades(self):
        err = rebuild_error("SomethingElse", "boom")
        assert isinstance(err, ReproError)
        assert "SomethingElse: boom" in str(err)


# --------------------------------------------------------------------- #
# the seam itself
class TestBackendSeam:
    def test_auto_mapping(self):
        assert isinstance(make_backend("auto", workers=0), InlineBackend)
        assert isinstance(make_backend("auto", workers=2), ThreadBackend)

    def test_unknown_backend_rejected(self):
        with pytest.raises(ReproError, match="unknown execution backend"):
            make_backend("carrier_pigeon", workers=2)

    def test_fleet_needs_workers(self):
        with pytest.raises(ReproError):
            make_backend("fleet", workers=0)

    def test_instance_with_options_rejected(self):
        with pytest.raises(ReproError):
            make_backend(InlineBackend(), workers=0,
                         options={"x": 1})

    def test_backend_cannot_be_rebound(self):
        backend = InlineBackend()
        with PlanningService(workers=0, backend=backend):
            with pytest.raises(ReproError, match="already bound"):
                PlanningService(workers=0, backend=backend)

    def test_snapshot_reports_backend(self):
        with PlanningService(workers=0, name="snap") as svc:
            assert svc.snapshot()["backend"]["name"] == "inline"
        with PlanningService(workers=1, name="snap2") as svc:
            assert svc.snapshot()["backend"]["name"] == "thread"

    @pytest.mark.parametrize("kwargs", [
        dict(workers=0),
        dict(workers=2),
        dict(workers=2, backend="fleet"),
    ])
    def test_close_is_idempotent(self, kwargs):
        svc = PlanningService(name="idem", **kwargs)
        svc.close()
        svc.close()  # second close must be a no-op, not an error
        assert svc.snapshot()["backend"]["closed"]

    def test_results_identical_across_inline_and_thread(self, mlp,
                                                        four_gpu):
        results = {}
        for name, kwargs in (("inline", dict(workers=0)),
                             ("thread", dict(workers=2))):
            with PlanningService(name=f"bit-{name}", **kwargs) as svc:
                results[name] = svc.plan(search_request(mlp, four_gpu))
        inline, thread = results["inline"], results["thread"]
        assert inline.outcome.time == thread.outcome.time
        assert {n: s.label() for n, s in inline.strategy.items()} \
            == {n: s.label() for n, s in thread.strategy.items()}


class TestThreadBackendClose:
    def test_join_timeout_is_surfaced(self, mlp, four_gpu):
        release = threading.Event()
        entered = threading.Event()

        class StuckService(PlanningService):
            def _serve(self, request, queue_seconds):
                entered.set()
                release.wait(30)
                return super()._serve(request, queue_seconds)

        svc = StuckService(workers=1, name="stuck",
                           backend_options={"join_timeout": 0.2},
                           recorder=FlightRecorder())
        ticket = svc.submit(search_request(mlp, four_gpu))
        assert entered.wait(10)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            svc.close()
        assert any("did not exit" in str(w.message) for w in caught)
        assert svc._backend.stalled_joins == 1
        stalls = journal_events(svc, event="worker_join_timeout")
        assert len(stalls) == 1
        assert stalls[0].attrs["worker"].startswith("stuck-worker")
        release.set()  # let the stuck request finish
        ticket.result(30)


# --------------------------------------------------------------------- #
# fleet failure paths
@pytest.mark.slow
class TestFleetBackend:
    def fleet_service(self, name, workers=2, *, stall=None, **kw):
        opts = dict(FLEET_KW, **kw)
        if stall:
            opts["stall_labels"] = stall
        backend = ProcessFleetBackend(workers, **opts)
        svc = PlanningService(workers=workers, backend=backend,
                              name=name, recorder=FlightRecorder())
        return svc, backend

    def test_serves_and_caches(self, mlp, four_gpu):
        svc, backend = self.fleet_service("basic")
        with svc:
            first = svc.plan(search_request(mlp, four_gpu))
            again = svc.plan(search_request(mlp, four_gpu))
        assert first.outcome.time == again.outcome.time
        assert again.from_cache
        assert backend.stats.plan_completed == 1

    def test_matches_inline_results(self, mlp, four_gpu):
        with PlanningService(workers=0, name="ref") as ref:
            expected = ref.plan(search_request(mlp, four_gpu))
        svc, _ = self.fleet_service("bitfleet")
        with svc:
            got = svc.plan(search_request(mlp, four_gpu))
        assert got.outcome.time == expected.outcome.time
        assert {n: s.label() for n, s in got.strategy.items()} \
            == {n: s.label() for n, s in expected.strategy.items()}

    def test_worker_killed_mid_request_redispatches(self, mlp, four_gpu):
        svc, backend = self.fleet_service(
            "kill", stall={"victim": 1.5})
        with svc:
            waiters = []
            ticket = svc.submit(search_request(mlp, four_gpu,
                                               label="victim-1"))
            # coalesced duplicates must see exactly the one result
            for _ in range(2):
                waiters.append(svc.submit(
                    search_request(mlp, four_gpu, label="victim-1")))
            wid = backend.wait_serving(ticket.fingerprint, timeout=20)
            assert wid is not None
            os.kill(backend.worker_pids()[wid], signal.SIGKILL)
            result = ticket.result(60)
            assert result.outcome.feasible or result.outcome.time > 0
            for waiter in waiters:
                assert waiter is ticket  # coalesced onto the same ticket
            assert result.coalesced == 2
        # the episode is reconstructable from the journal:
        # worker_lost -> request_redispatched -> completed
        events = [e.event for e in svc.recorder.journal.events()]
        assert "worker_lost" in events
        assert "request_redispatched" in events
        assert events.index("worker_lost") \
            < events.index("request_redispatched") \
            < len(events) - 1 - events[::-1].index("completed")
        redisp = journal_events(svc, event="request_redispatched")
        assert redisp[0].attrs["worker"] == wid
        assert redisp[0].attrs["attempt"] == 1
        assert backend.stats.redispatched == 1

    def test_idle_worker_killed_is_respawned(self, mlp, four_gpu):
        svc, backend = self.fleet_service("respawn")
        with svc:
            svc.plan(search_request(mlp, four_gpu))  # starts the fleet
            pids = backend.worker_pids()
            assert len(pids) == 2
            victim = sorted(pids)[0]
            os.kill(pids[victim], signal.SIGKILL)
            deadline = time.monotonic() + 20
            while time.monotonic() < deadline:
                alive = backend.worker_pids()
                if victim not in alive and len(alive) == 2:
                    break
                time.sleep(0.05)
            else:
                pytest.fail("lost idle worker was not respawned")
            # the replacement serves traffic
            fresh = svc.plan(search_request(mlp, four_gpu, seed=7))
            assert fresh.outcome.time > 0
        spawns = journal_events(svc, event="worker_spawn")
        losses = journal_events(svc, event="worker_lost")
        assert len(spawns) == 3  # 2 initial + 1 replacement
        assert len(losses) == 1
        assert backend.snapshot()["stats"]["spawned"] == 3

    def test_heartbeat_false_positive_discards_late_result(
            self, mlp, four_gpu):
        # SIGSTOP silences heartbeats without killing the worker: the
        # manager declares it lost and re-dispatches; when the worker
        # is resumed its late result must be discarded, not delivered
        # a second time.
        svc, backend = self.fleet_service(
            "stall", stall={"slow": 1.5}, heartbeat_timeout=0.5)
        with svc:
            ticket = svc.submit(search_request(mlp, four_gpu,
                                               label="slow-1"))
            wid = backend.wait_serving(ticket.fingerprint, timeout=20)
            pid = backend.worker_pids()[wid]
            os.kill(pid, signal.SIGSTOP)
            try:
                result = ticket.result(60)   # served by the survivor
                assert result.outcome.time > 0
            finally:
                os.kill(pid, signal.SIGCONT)
            # the resumed worker finishes its stalled copy eventually;
            # the manager must discard it (at-most-once per ticket)
            deadline = time.monotonic() + 20
            while backend.stats.discarded < 1 \
                    and time.monotonic() < deadline:
                time.sleep(0.05)
            assert backend.stats.discarded == 1
        discards = journal_events(svc, event="worker_result_discarded")
        assert len(discards) == 1
        assert discards[0].attrs["worker"] == wid
        assert backend.stats.plan_completed == 1  # resolved exactly once

    def test_redispatch_budget_exhausted(self, mlp, four_gpu):
        svc, backend = self.fleet_service(
            "budget", workers=1, stall={"doom": 30.0},
            redispatch_limit=0)
        with svc:
            ticket = svc.submit(search_request(mlp, four_gpu,
                                               label="doom-1"))
            wid = backend.wait_serving(ticket.fingerprint, timeout=20)
            os.kill(backend.worker_pids()[wid], signal.SIGKILL)
            with pytest.raises(WorkerLostError) as excinfo:
                ticket.result(60)
            assert excinfo.value.attempts == 1
            assert excinfo.value.workers == [wid]
        assert backend.stats.redispatched == 0

    def test_graceful_drain_under_load(self, mlp, four_gpu):
        svc, backend = self.fleet_service("drain", workers=2)
        with svc:
            tickets = [svc.submit(search_request(mlp, four_gpu, seed=i))
                       for i in range(6)]
            svc.close()
            statuses = []
            for ticket in tickets:
                try:
                    ticket.result(60)
                    statuses.append("ok")
                except ServiceClosedError:
                    statuses.append("closed")
            # every ticket resolved exactly one way; in-flight work
            # drained, the rest failed fast with ServiceClosedError
            assert len(statuses) == 6
            assert backend.snapshot()["alive"] == 0
        exits = journal_events(svc, event="worker_exit")
        assert len(exits) >= 2

    def test_batch_evaluator_borrows_fleet(self, mlp, four_gpu):
        strategies = [dp_strategy(n, mlp, four_gpu)
                      for n in DP_BASELINES]
        serial = [PlanBuilder(mlp, four_gpu).evaluate(s)
                  for s in strategies]
        svc, backend = self.fleet_service("borrow")
        with svc:
            backend.ensure_started()
            assert active_fleet() is backend
            batch = BatchEvaluator(PlanBuilder(mlp, four_gpu),
                                   max_workers=2)
            outcomes = batch.evaluate(strategies)
            assert batch._pool is None   # borrowed, no private pool
            assert backend.stats.eval_jobs >= 1
        assert [o.time for o in outcomes] == [o.time for o in serial]
        assert [o.oom for o in outcomes] == [o.oom for o in serial]
        assert active_fleet() is None    # unregistered on close
        # with the fleet gone the evaluator falls back transparently
        fallback = batch.evaluate([strategies[0]])
        assert fallback[0].time == serial[0].time
