"""Tests for the benchmark model zoo."""

import pytest

from repro.errors import GraphError
from repro.graph.models import (
    ALL_MODELS,
    CNN_MODELS,
    build_model,
    build_resnet,
    build_vgg19,
    get_model_entry,
    model_names,
)
from repro.graph.op import OpPhase


@pytest.mark.parametrize("name", ALL_MODELS)
def test_tiny_preset_valid_training_graph(name):
    g = build_model(name, "tiny")
    g.validate()
    assert g.ops_in_phase(OpPhase.BACKWARD)
    assert g.ops_in_phase(OpPhase.APPLY)
    assert len(g.sources()) >= 1


@pytest.mark.parametrize("name", ALL_MODELS)
def test_bench_preset_larger_than_tiny(name):
    tiny = build_model(name, "tiny")
    bench = build_model(name, "bench")
    assert bench.total_flops() > tiny.total_flops()


def test_registry_contents():
    assert set(CNN_MODELS) < set(ALL_MODELS)
    assert len(ALL_MODELS) == 8
    assert set(ALL_MODELS) <= set(model_names())


def test_unknown_model_rejected():
    with pytest.raises(GraphError):
        get_model_entry("alexnet")


def test_unknown_preset_rejected():
    with pytest.raises(GraphError):
        build_model("vgg19", "huge")


def test_preset_overrides():
    g = build_model("transformer", "tiny", layers=3)
    # 3 layers produce more ops than the default 2
    g2 = build_model("transformer", "tiny")
    assert len(g) > len(g2)


class TestVGG:
    def test_fc_dominates_params(self):
        g = build_vgg19(batch_size=8, image_size=128)
        fc_params = sum(op.param_bytes for op in g
                        if op.layer in ("fc6", "fc7")
                        and op.phase is OpPhase.FORWARD)
        total = g.total_param_bytes()
        assert fc_params > 0.4 * total

    def test_batch_size_scales_flops_not_params(self):
        g1 = build_vgg19(batch_size=8, image_size=32, fc_units=64, classes=10)
        g2 = build_vgg19(batch_size=16, image_size=32, fc_units=64, classes=10)
        assert g2.total_flops() > 1.8 * g1.total_flops()
        assert g2.total_param_bytes() == g1.total_param_bytes()


class TestResNet:
    def test_depth_plans(self):
        g50 = build_resnet(8, 50, image_size=32, classes=10)
        g101 = build_resnet(8, 101, image_size=32, classes=10)
        assert len(g101) > len(g50)

    def test_unknown_depth(self):
        with pytest.raises(GraphError):
            build_resnet(8, depth=42)

    def test_resnet200_is_big(self):
        g = build_resnet(8, 200, image_size=32, classes=10)
        assert len(g) > 2000


class TestNLPModels:
    def test_transformer_layers_scale(self):
        g6 = build_model("transformer", "tiny", layers=2)
        g12 = build_model("transformer", "tiny", layers=4)
        assert len(g12) > len(g6)

    def test_embedding_param_heavy(self):
        g = build_model("bert_large", "tiny")
        emb = [op for op in g if op.op_type == "Embedding"
               and op.phase is OpPhase.FORWARD]
        assert emb
        assert max(o.param_bytes for o in emb) > 0

    def test_xlnet_heavier_than_bert(self):
        bert = build_model("bert_large", "tiny")
        xlnet = build_model("xlnet_large", "tiny")
        # two-stream attention -> more ops and flops at equal config
        assert len(xlnet) > len(bert)
        assert xlnet.total_flops() > bert.total_flops()
