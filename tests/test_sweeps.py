"""Tests for the heterogeneity/bandwidth sweep analyses."""

import pytest

from repro.experiments.sweeps import (
    _skewed_cluster,
    bandwidth_sweep,
    heterogeneity_sweep,
)

from tests.helpers import make_mlp


def builder():
    # compute-bound conv net: skew effects show on compute, not just comm
    from repro.graph.models import build_model
    return build_model("inception_v3", "tiny", batch_size=64)


class TestSkewedCluster:
    def test_homogeneous_at_skew_one(self):
        c = _skewed_cluster(1.0)
        powers = {d.compute_power for d in c.devices}
        assert len(powers) == 1

    def test_skew_slows_second_server(self):
        c = _skewed_cluster(3.0)
        fast = c.device("gpu0").compute_power
        slow = c.device("gpu2").compute_power
        assert fast / slow == pytest.approx(3.0)

    def test_invalid_skew(self):
        with pytest.raises(ValueError):
            _skewed_cluster(0.5)


class TestHeterogeneitySweep:
    @pytest.fixture(scope="class")
    def points(self):
        return heterogeneity_sweep(builder, skews=[1.0, 3.0], episodes=8)

    def test_shapes(self, points):
        assert [p.x for p in points] == [1.0, 3.0]
        for p in points:
            assert {"EV-AR", "CP-AR", "HeteroG"} == set(p.times)
            assert all(t > 0 for t in p.times.values())

    def test_ev_degrades_with_skew(self, points):
        """Even DP slows down as devices diverge (the paper's premise)."""
        assert points[1].times["EV-AR"] > points[0].times["EV-AR"]

    def test_cp_gap_grows_with_skew(self, points):
        """The EV-vs-CP gap widens with heterogeneity."""
        gap0 = points[0].times["EV-AR"] / points[0].times["CP-AR"]
        gap1 = points[1].times["EV-AR"] / points[1].times["CP-AR"]
        assert gap1 > gap0

    def test_heterog_never_worse_than_cp(self, points):
        for p in points:
            assert p.times["HeteroG"] <= p.times["CP-AR"] * 1.05

    def test_bandwidth_builder_mlp(self):
        points = bandwidth_sweep(
            lambda: make_mlp(layers=3, width=128, batch_size=64,
                             name="bw_mlp"),
            gbps=[10, 100])
        assert points[0].times["CP-AR"] > points[1].times["CP-AR"]


class TestBandwidthSweep:
    def test_more_bandwidth_never_slower(self):
        points = bandwidth_sweep(builder, gbps=[10, 100])
        assert points[1].times["CP-AR"] <= points[0].times["CP-AR"] * 1.02
