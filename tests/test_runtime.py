"""Tests for the execution engine, runner, deployments, and API."""

import pytest

import repro
from repro.agent import AgentConfig
from repro.baselines import dp_strategy
from repro.errors import OutOfMemoryError, ReproError
from repro.graph.models import build_model
from repro.parallel import single_device_strategy
from repro.runtime import (
    ConvergenceModel,
    DistributedRunner,
    ExecutionEngine,
    end_to_end_minutes,
    build_deployment,
)

from tests.helpers import make_mlp


class TestExecutionEngine:
    def test_jitter_varies_iterations(self, mlp_graph, four_gpu):
        dep = build_deployment(mlp_graph, four_gpu,
                              single_device_strategy(mlp_graph, four_gpu))
        engine = ExecutionEngine(four_gpu, jitter_sigma=0.1, seed=0)
        stats = engine.measure(dep.dist, dep.schedule, dep.resident_bytes,
                               iterations=5)
        assert stats.iterations == 5
        assert stats.std > 0

    def test_zero_jitter_is_deterministic(self, mlp_graph, four_gpu):
        dep = build_deployment(mlp_graph, four_gpu,
                              single_device_strategy(mlp_graph, four_gpu))
        engine = ExecutionEngine(four_gpu, jitter_sigma=0.0)
        stats = engine.measure(dep.dist, dep.schedule, dep.resident_bytes,
                               iterations=3)
        assert stats.std == pytest.approx(0.0)

    def test_oom_raises(self, four_gpu):
        """A graph whose parameters exceed one GPU must OOM on MP."""
        g = make_mlp(name="big_mlp", layers=2, width=4096)
        # inflate resident memory beyond the 11GB card by pinning to gpu2
        dep = build_deployment(g, four_gpu,
                              single_device_strategy(g, four_gpu, "gpu2"))
        dep.resident_bytes["gpu2"] = 12 * 1024 ** 3
        engine = ExecutionEngine(four_gpu)
        with pytest.raises(OutOfMemoryError):
            engine.run_iteration(dep.dist, dep.schedule, dep.resident_bytes)

    def test_truth_differs_from_simulator_prediction(self, mlp_graph,
                                                     four_gpu):
        """The testbed and the Strategy Maker's simulator are different
        cost models (no circular evaluation)."""
        from repro.agent.environment import StrategyEvaluator
        from repro.profiling import Profiler
        profile = Profiler(seed=0).profile(mlp_graph, four_gpu)
        st = dp_strategy("EV-AR", mlp_graph, four_gpu)
        sim_time = StrategyEvaluator(mlp_graph, four_gpu,
                                     profile).evaluate(st).time
        dep = build_deployment(mlp_graph, four_gpu, st, profile=profile)
        engine = ExecutionEngine(four_gpu, seed=3)
        truth = engine.measure(dep.dist, dep.schedule, dep.resident_bytes,
                               iterations=3).mean
        assert truth != pytest.approx(sim_time, rel=1e-6)
        # but they agree to within a plausible modelling error
        assert truth == pytest.approx(sim_time, rel=0.5)


class TestRunner:
    def test_run_collects_iterations(self, mlp_graph, four_gpu):
        dep = build_deployment(mlp_graph, four_gpu,
                              single_device_strategy(mlp_graph, four_gpu))
        runner = DistributedRunner(dep)
        report = runner.run(4)
        assert len(report.iteration_times) == 4
        assert report.total_seconds > 0

    def test_throughput_uses_global_batch(self, mlp_graph, four_gpu):
        dep = build_deployment(mlp_graph, four_gpu,
                              single_device_strategy(mlp_graph, four_gpu))
        runner = DistributedRunner(dep)
        assert runner.global_batch == 8
        report = runner.run(2)
        assert report.throughput == pytest.approx(
            8 / report.mean_iteration_time)

    def test_invalid_steps(self, mlp_graph, four_gpu):
        dep = build_deployment(mlp_graph, four_gpu,
                              single_device_strategy(mlp_graph, four_gpu))
        with pytest.raises(ReproError):
            DistributedRunner(dep).run(0)


class TestConvergence:
    def test_iterations_scale_inversely_with_batch(self):
        m192 = ConvergenceModel("vgg19", 192)
        m288 = ConvergenceModel("vgg19", 288)
        assert m192.iterations == pytest.approx(m288.iterations * 1.5, rel=0.01)

    def test_end_to_end_matches_paper_scale(self):
        """Paper Table 5: VGG19 CP-AR @8GPU = 0.591 s/iter -> ~661 min."""
        minutes = end_to_end_minutes("vgg19", 192, 0.591)
        assert minutes == pytest.approx(660.9, rel=0.05)

    def test_unknown_model_rejected(self):
        with pytest.raises(ReproError):
            ConvergenceModel("alexnet", 64).iterations


class TestClientAPI:
    CFG = repro.HeteroGConfig(
        episodes=6,
        agent=AgentConfig(max_groups=10, gat_hidden=16, gat_layers=2,
                          gat_heads=2, strategy_dim=16, strategy_heads=2,
                          strategy_layers=1),
    )

    def test_get_runner_end_to_end(self):
        runner = repro.get_runner(
            lambda: make_mlp(name="api_mlp"),
            lambda: repro.Dataset(batch_size=8),
            [{"host": "a", "gpu_model": "Tesla V100", "gpus": 2,
              "nic_gbps": 100},
             {"host": "b", "gpu_model": "GTX 1080Ti", "gpus": 2}],
            self.CFG,
        )
        report = runner.run(3)
        assert report.mean_iteration_time > 0

    def test_batch_mismatch_rejected(self):
        with pytest.raises(ReproError):
            repro.get_runner(
                lambda: make_mlp(name="api_mlp2"),
                lambda: repro.Dataset(batch_size=99),
                [{"host": "a", "gpu_model": "Tesla V100", "gpus": 2}],
                self.CFG,
            )

    def test_model_func_must_return_graph(self):
        with pytest.raises(ReproError):
            repro.get_runner(
                lambda: "not a graph",
                lambda: repro.Dataset(batch_size=8),
                [{"host": "a", "gpu_model": "Tesla V100", "gpus": 2}],
                self.CFG,
            )

    def test_unknown_gpu_model_rejected(self):
        with pytest.raises(ReproError):
            repro.parse_device_info(
                [{"host": "a", "gpu_model": "RTX 9090", "gpus": 2}])

    def test_missing_keys_rejected(self):
        with pytest.raises(ReproError):
            repro.parse_device_info([{"host": "a"}])

    def test_cluster_passthrough(self, four_gpu):
        assert repro.parse_device_info(four_gpu) is four_gpu

    def test_dataset_validation(self):
        with pytest.raises(ReproError):
            repro.Dataset(batch_size=0)


class TestHeteroGFacade:
    def test_plan_and_deploy(self, four_gpu):
        module = repro.HeteroG(four_gpu, TestClientAPI.CFG)
        g = make_mlp(name="facade_mlp")
        strategy = module.plan(g)
        dep = module.deploy(g, strategy)
        runner = module.runner(dep)
        report = runner.run(2)
        assert report.mean_iteration_time > 0
        # plan then deploy share one warm service context: the explicit-
        # strategy deploy reuses the search's profiled session
        assert module.service.stats.executed == 2
        result = module.plan_result(g, strategy=strategy)
        assert result.from_cache

    def test_analyze_requires_training_graph(self, four_gpu):
        from repro.errors import GraphError
        from repro.graph import GraphBuilder
        module = repro.HeteroG(four_gpu)
        b = GraphBuilder("fwd_only", 4)
        x = b.input((8,))
        b.dense(x, 4)
        with pytest.raises(GraphError):
            module.analyze(b.graph)
