"""Additional runtime/deployment/convergence tests."""

import pytest

from repro.cluster import cluster_4gpu
from repro.parallel import single_device_strategy
from repro.parallel.serialize import load_strategy, save_strategy
from repro.profiling import Profiler
from repro.errors import ReproError
from repro.runtime import (
    SAMPLES_TO_TARGET,
    ConvergenceModel,
    DistributedRunner,
    build_deployment,
)

from tests.helpers import make_mlp


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


class TestDeployment:
    def test_build_deployment_defaults_profile(self, four_gpu):
        g = make_mlp(name="dep_mlp")
        dep = build_deployment(g, four_gpu,
                              single_device_strategy(g, four_gpu))
        assert dep.profile is not None
        assert dep.num_dist_ops == len(g)

    def test_deployment_reuses_given_profile(self, four_gpu):
        g = make_mlp(name="dep_mlp2")
        profile = Profiler(seed=0).profile(g, four_gpu)
        dep = build_deployment(g, four_gpu,
                              single_device_strategy(g, four_gpu),
                              profile=profile)
        assert dep.profile is profile

    def test_saved_strategy_redeploys_identically(self, four_gpu, tmp_path):
        """The strategy-artifact workflow: search once, persist, redeploy."""
        g = make_mlp(name="dep_mlp3")
        strategy = single_device_strategy(g, four_gpu, "gpu1")
        path = str(tmp_path / "st.json")
        save_strategy(strategy, path)
        loaded = load_strategy(path, g, four_gpu)
        d1 = build_deployment(g, four_gpu, strategy)
        d2 = build_deployment(g, four_gpu, loaded)
        assert d1.dist.op_names == d2.dist.op_names
        r1 = DistributedRunner(d1).run(2)
        r2 = DistributedRunner(d2).run(2)
        assert r1.mean_iteration_time == pytest.approx(
            r2.mean_iteration_time, rel=0.2)


class TestDeploymentConstructorShapes:
    """build_deployment is the one constructor; the pre-service
    aliases (make_deployment / deployment_from_plan) are gone."""

    def test_deprecated_aliases_removed(self):
        import repro.runtime as runtime
        assert not hasattr(runtime, "make_deployment")
        assert not hasattr(runtime, "deployment_from_plan")

    def test_build_deployment_from_plan_shape(self, four_gpu):
        from repro.plan import PlanBuilder
        g = make_mlp(name="dep_shape")
        strategy = single_device_strategy(g, four_gpu)
        plan = PlanBuilder(g, four_gpu).build(strategy)
        dep = build_deployment(plan)
        assert dep.plan is plan and dep.strategy is plan.strategy
        # the plan shape takes no extra compile arguments
        with pytest.raises(ReproError):
            build_deployment(plan, four_gpu, strategy)

    def test_build_deployment_validates_inputs(self, four_gpu):
        g = make_mlp(name="dep_validate")
        with pytest.raises(ReproError):
            build_deployment(g, four_gpu)          # strategy missing
        with pytest.raises(ReproError):
            build_deployment("not a graph", four_gpu,
                             single_device_strategy(g, four_gpu))


class TestConvergenceModel:
    def test_all_cnn_models_have_budgets(self):
        for model in ("vgg19", "resnet200", "inception_v3", "mobilenet_v2",
                      "nasnet"):
            assert model in SAMPLES_TO_TARGET

    def test_iterations_rounding(self):
        m = ConvergenceModel("vgg19", 192)
        assert m.iterations == round(SAMPLES_TO_TARGET["vgg19"] / 192)

    def test_minutes_proportional_to_iteration_time(self):
        m = ConvergenceModel("nasnet", 192)
        assert m.end_to_end_minutes(1.0) == pytest.approx(
            2 * m.end_to_end_minutes(0.5))

    def test_paper_table5_cross_check_12gpu(self):
        """Paper consistency: Table 5's 12-GPU HeteroG minutes over
        Table 4's per-iteration time gives 2/3 the 8-GPU iteration count
        (global batch x1.5)."""
        iters_8 = 513.1 * 60 / 0.462
        iters_12 = 369.8 * 60 / 0.503
        assert iters_12 == pytest.approx(iters_8 * 2 / 3, rel=0.02)


class TestTrainingReport:
    def test_empty_report_nan(self):
        from repro.runtime.runner import TrainingReport
        r = TrainingReport(steps=0, global_batch=8)
        assert r.throughput == 0.0
        assert r.total_seconds == 0.0
