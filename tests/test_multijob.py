"""Tests for the multi-job allocation extension (paper Sec. 7)."""

import pytest

from repro.cluster import cluster_8gpu
from repro.errors import ReproError
from repro.multijob import Allocation, Job, MultiJobAllocator, Objective

from tests.helpers import make_mlp


@pytest.fixture(scope="module")
def cluster():
    return cluster_8gpu()


def jobs():
    # "big" genuinely scales with more GPUs (conv-heavy, light on
    # parameters); "small" is communication-bound and is fastest on a
    # single device
    from repro.graph.models import build_model
    return [
        Job("big", build_model("resnet200", "tiny", batch_size=256,
                               image_size=64),
            global_batch=256),
        Job("small", make_mlp(layers=2, width=32, batch_size=16,
                              name="job_small"), global_batch=16),
    ]


@pytest.fixture(scope="module")
def allocation(cluster):
    return MultiJobAllocator(cluster, seed=0).allocate(jobs())


class TestJobValidation:
    def test_min_gpus_positive(self):
        with pytest.raises(ReproError):
            Job("j", make_mlp(name="job_bad"), 8, min_gpus=0)

    def test_no_jobs_rejected(self, cluster):
        with pytest.raises(ReproError):
            MultiJobAllocator(cluster).allocate([])

    def test_too_many_min_gpus(self, cluster):
        many = [Job(f"j{i}", make_mlp(name=f"job_{i}"), 8, min_gpus=3)
                for i in range(4)]
        with pytest.raises(ReproError):
            MultiJobAllocator(cluster).allocate(many)

    def test_duplicate_names_rejected(self, cluster):
        dup = [Job("same", make_mlp(name="job_d1"), 8),
               Job("same", make_mlp(name="job_d2"), 8)]
        with pytest.raises(ReproError):
            MultiJobAllocator(cluster).allocate(dup)


class TestAllocation:
    def test_every_gpu_assigned_or_idle(self, allocation, cluster):
        assigned = [d for devs in allocation.devices.values() for d in devs]
        assigned += allocation.idle
        assert sorted(assigned) == sorted(cluster.device_ids)

    def test_no_device_assigned_twice(self, allocation):
        assigned = [d for devs in allocation.devices.values() for d in devs]
        assert len(assigned) == len(set(assigned))

    def test_idle_gpus_only_when_harmful(self, allocation, cluster):
        """The scalable job exists, so not every GPU should sit idle."""
        assert len(allocation.idle) < cluster.num_devices - 2

    def test_min_gpus_respected(self, allocation):
        for devs in allocation.devices.values():
            assert len(devs) >= 1

    def test_speeds_positive(self, allocation):
        assert all(s > 0 for s in allocation.speeds.values())

    def test_scalable_job_gets_more_gpus(self, allocation):
        """Greedy throughput allocation gives extra GPUs to the job whose
        marginal gain is larger — the compute-heavy, scalable one."""
        assert len(allocation.devices["big"]) > len(allocation.devices["small"])

    def test_total_throughput(self, allocation):
        assert allocation.total_throughput() == pytest.approx(
            sum(allocation.speeds.values()))

    def test_fairness_objective_helps_slowest(self, cluster):
        fair = MultiJobAllocator(cluster, seed=0).allocate(
            jobs(), objective=Objective.FAIRNESS)
        assert fair.min_speed() > 0

    def test_makespan_objective_runs(self, cluster):
        alloc = MultiJobAllocator(cluster, seed=0).allocate(
            jobs(), objective=Objective.MIN_MAKESPAN)
        assert set(alloc.devices) == {"big", "small"}

    def test_speed_cache_reused(self, cluster):
        allocator = MultiJobAllocator(cluster, seed=0)
        allocator.allocate(jobs())
        before = allocator.service.stats.snapshot()
        # the greedy loop re-queries identical (graph, allocation)
        # candidates; those must be result-cache hits, not re-evaluations
        assert before["executed"] > 0
        assert before["result_hits"] > 0
        allocator.allocate(jobs())
        after = allocator.service.stats.snapshot()
        # second allocation answered fully from the service's result cache
        assert after["executed"] == before["executed"]
        assert after["result_hits"] > before["result_hits"]

    def test_identical_queries_evaluated_once(self, cluster):
        """One evaluation per unique (job, device-set) fingerprint."""
        allocator = MultiJobAllocator(cluster, seed=0)
        allocator.allocate(jobs())
        stats = allocator.service.stats
        assert stats.executed + stats.result_hits == stats.submitted
        # far fewer evaluations than queries: the loop repeats itself
        assert stats.executed < stats.submitted / 2
