"""Property-based invariants on the compile -> schedule -> simulate stack.

Random strategies over random small graphs must always yield valid
distributed graphs whose simulated makespan respects fundamental bounds.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import cluster_4gpu
from repro.graph import GraphBuilder, build_training_graph
from repro.graph.grouping import group_operations
from repro.agent.policy import actions_to_strategy, num_actions
from repro.parallel import GraphCompiler
from repro.profiling import Profiler, exact_profile
from repro.scheduling import ListScheduler, critical_path, total_work
from repro.simulation import ProfileCostModel, Simulator

CLUSTER = cluster_4gpu()


def random_graph(layers: int, width: int, batch: int, branches: bool):
    b = GraphBuilder(f"rand_{layers}_{width}_{batch}_{branches}", batch)
    x = b.input((8,))
    for i in range(layers):
        x = b.dense(x, width, layer=f"fc{i}")
        if branches and i % 2 == 0:
            left = b.activation(x, layer=f"l{i}")
            right = b.activation(x, kind="Gelu", layer=f"r{i}")
            x = b.add_n([left, right], layer=f"merge{i}")
        else:
            x = b.activation(x, layer=f"fc{i}")
    b.softmax_loss(x, 10)
    return build_training_graph(b)


@st.composite
def graph_and_actions(draw):
    layers = draw(st.integers(1, 4))
    width = draw(st.sampled_from([8, 16, 32]))
    batch = draw(st.sampled_from([4, 8, 16]))
    branches = draw(st.booleans())
    graph = random_graph(layers, width, batch, branches)
    groups = draw(st.integers(2, 8))
    grouping = group_operations(graph, {n: 1.0 for n in graph.op_names},
                                groups)
    actions = draw(st.lists(
        st.integers(0, num_actions(CLUSTER) - 1),
        min_size=grouping.num_groups, max_size=grouping.num_groups,
    ))
    return graph, grouping, actions


@settings(max_examples=25, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph_and_actions())
def test_random_strategy_compiles_and_simulates(payload):
    graph, grouping, actions = payload
    strategy = actions_to_strategy(graph, CLUSTER, grouping, actions)
    profile = exact_profile(graph, CLUSTER)
    compiler = GraphCompiler(CLUSTER, profile)
    dist = compiler.compile(graph, strategy)
    dist.validate()

    cost = ProfileCostModel(CLUSTER, profile)
    schedule = ListScheduler().schedule(dist, cost)
    result = Simulator(cost).run(dist, priorities=schedule.priorities,
                                 resident_bytes=compiler.resident_bytes)

    # fundamental scheduling bounds
    cp = critical_path(dist, cost)
    work = total_work(dist, cost)
    assert result.makespan >= cp - 1e-9
    assert result.makespan <= work + 1e-9

    # every compute op instance executed exactly once: busy time adds up
    assert sum(result.device_busy.values()) <= work + 1e-9

    # memory accounting is non-negative and peaks at least at resident
    for dev, peak in result.peak_memory.items():
        assert peak >= compiler.resident_bytes.get(dev, 0) - 1e-6


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(graph_and_actions())
def test_priority_order_never_beats_critical_path(payload):
    """Both candidate orders respect the same lower bound, and the
    scheduler's estimate matches a re-simulation (determinism)."""
    graph, grouping, actions = payload
    strategy = actions_to_strategy(graph, CLUSTER, grouping, actions)
    profile = exact_profile(graph, CLUSTER)
    compiler = GraphCompiler(CLUSTER, profile)
    dist = compiler.compile(graph, strategy)
    cost = ProfileCostModel(CLUSTER, profile)
    schedule = ListScheduler().schedule(dist, cost)
    again = Simulator(cost).run(dist, priorities=schedule.priorities)
    assert again.makespan == pytest.approx(schedule.estimated_makespan,
                                           rel=1e-9)


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 3), st.sampled_from([8, 16]), st.booleans())
def test_strategy_mix_fractions_sum_to_one(layers, width, branches):
    graph = random_graph(layers, width, 8, branches)
    grouping = group_operations(graph, {n: 1.0 for n in graph.op_names}, 4)
    rng = np.random.default_rng(layers * width)
    actions = rng.integers(0, num_actions(CLUSTER), grouping.num_groups)
    strategy = actions_to_strategy(graph, CLUSTER, grouping, actions)
    mix = strategy.strategy_mix()
    assert sum(mix.values()) == pytest.approx(1.0)


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 4), st.sampled_from([16, 32]))
def test_single_device_time_exceeds_distributed_lower_bound(layers, width):
    """Distributing over 4 GPUs can't be slower than 4x one GPU's work
    in the simulator (sanity on the cost model's additivity)."""
    graph = random_graph(layers, width, 16, False)
    profile = exact_profile(graph, CLUSTER)
    from repro.parallel import single_device_strategy
    compiler = GraphCompiler(CLUSTER, profile)
    dist = compiler.compile(graph, single_device_strategy(graph, CLUSTER))
    cost = ProfileCostModel(CLUSTER, profile)
    result = Simulator(cost).run(dist)
    assert result.makespan == pytest.approx(total_work(dist, cost), rel=1e-6)
