"""Tests for refcounted memory tracking and OOM detection."""

import pytest

from repro.cluster import cluster_4gpu
from repro.graph.op import Operation, TensorSpec
from repro.parallel import (
    CommMethod,
    GraphCompiler,
    ReplicaAllocation,
    make_dp_strategy,
    single_device_strategy,
    uniform_strategy,
)
from repro.parallel.distgraph import DistGraph, DistOp, DistOpKind
from repro.simulation import MemoryTracker, Simulator
from repro.simulation.costs import MappingCostModel, ProfileCostModel
from repro.profiling import Profiler


def _compute(name, device, out_bytes):
    op = Operation(name, "Relu", TensorSpec((1, out_bytes // 4)), flops=1.0)
    return DistOp(name=name, kind=DistOpKind.COMPUTE, source_op=op,
                  device=device, batch_fraction=1.0)


class TestRefcounting:
    def test_activation_freed_after_last_consumer(self):
        from repro.profiling.cost_model import ACTIVATION_OVERHEAD
        pinned = int(400 * ACTIVATION_OVERHEAD)
        g = DistGraph("g")
        g.add(_compute("a", "d0", 400))
        g.add(_compute("b", "d0", 400), ["a"])
        g.add(_compute("c", "d0", 400), ["a"])
        tracker = MemoryTracker(g, {"d0": 0})
        tracker.on_start(g.op("a"))
        tracker.on_finish(g.op("a"))
        assert tracker.current["d0"] == pinned
        tracker.on_start(g.op("b"))
        tracker.on_finish(g.op("b"))
        # a still alive: c hasn't consumed it; b freed (sink)
        assert tracker.current["d0"] == pinned
        tracker.on_start(g.op("c"))
        tracker.on_finish(g.op("c"))
        assert tracker.current["d0"] == 0.0

    def test_peak_includes_resident(self):
        from repro.profiling.cost_model import ACTIVATION_OVERHEAD
        g = DistGraph("g")
        g.add(_compute("a", "d0", 1000))
        tracker = MemoryTracker(g, {"d0": 500})
        tracker.on_start(g.op("a"))
        assert tracker.peak["d0"] == 500 + int(1000 * ACTIVATION_OVERHEAD)

    def test_transfer_charges_destination(self):
        g = DistGraph("g")
        t = DistOp(name="t", kind=DistOpKind.TRANSFER, src_device="d0",
                   dst_device="d1", size_bytes=256)
        g.add(t)
        tracker = MemoryTracker(g, {})
        tracker.on_start(t)
        assert tracker.current["d1"] == 256.0
        assert tracker.current.get("d0", 0.0) == 0.0

    def test_oom_devices(self):
        g = DistGraph("g")
        g.add(_compute("a", "d0", 4000))
        tracker = MemoryTracker(g, {"d0": 0})
        tracker.on_start(g.op("a"))
        assert tracker.oom_devices({"d0": 1000}) == ["d0"]
        assert tracker.oom_devices({"d0": 10_000}) == []

    def test_simulation_peak_below_sum_of_all_outputs(self, mlp_graph):
        """Refcounting must release memory: the peak during a single-device
        run is below the total of all activation bytes."""
        cluster = cluster_4gpu()
        profile = Profiler(seed=0).profile(mlp_graph, cluster)
        st = single_device_strategy(mlp_graph, cluster)
        compiler = GraphCompiler(cluster, profile)
        dist = compiler.compile(mlp_graph, st)
        sim = Simulator(ProfileCostModel(cluster, profile))
        res = sim.run(dist, resident_bytes=compiler.resident_bytes)
        total_activations = sum(op.output.size_bytes for op in mlp_graph)
        resident = compiler.resident_bytes["gpu0"]
        assert res.peak_memory["gpu0"] < resident + total_activations
        assert res.peak_memory["gpu0"] > resident


class TestOOMInSimulation:
    def test_oom_flag_when_capacity_tiny(self, mlp_graph):
        cluster = cluster_4gpu()
        profile = Profiler(seed=0).profile(mlp_graph, cluster)
        st = uniform_strategy(mlp_graph, cluster, make_dp_strategy(
            cluster, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        compiler = GraphCompiler(cluster, profile)
        dist = compiler.compile(mlp_graph, st)
        sim = Simulator(ProfileCostModel(cluster, profile))
        res = sim.run(dist, resident_bytes=compiler.resident_bytes,
                      capacities={d: 10 for d in cluster.device_ids})
        assert res.oom
        assert set(res.oom_devices) == set(cluster.device_ids)

    def test_no_oom_with_real_capacities(self, mlp_graph):
        cluster = cluster_4gpu()
        profile = Profiler(seed=0).profile(mlp_graph, cluster)
        st = uniform_strategy(mlp_graph, cluster, make_dp_strategy(
            cluster, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        compiler = GraphCompiler(cluster, profile)
        dist = compiler.compile(mlp_graph, st)
        sim = Simulator(ProfileCostModel(cluster, profile))
        res = sim.run(dist, resident_bytes=compiler.resident_bytes,
                      capacities={d.device_id: d.memory_bytes
                                  for d in cluster.devices})
        assert not res.oom
