"""Learning-dynamics tests: the policy must actually learn."""

import numpy as np
import pytest

from repro.nn import Tensor
from repro.nn import functional as F
from repro.nn.transformer_xl import RelativePositionBias, StrategyNetwork
from repro.nn.optim import Adam


class TestRelativePositionBias:
    def test_shape(self):
        bias = RelativePositionBias(heads=2, max_distance=4,
                                    rng=np.random.default_rng(0))
        out = bias(6)
        assert out.shape == (2, 6, 6)

    def test_translation_invariance(self):
        """Bias depends only on i - j (clipped)."""
        bias = RelativePositionBias(heads=1, max_distance=8,
                                    rng=np.random.default_rng(0))
        mat = bias(5).data[0]
        assert mat[0, 1] == pytest.approx(mat[2, 3])
        assert mat[1, 0] == pytest.approx(mat[3, 2])
        assert mat[0, 1] != pytest.approx(mat[1, 0])  # direction matters

    def test_clipping_beyond_max_distance(self):
        bias = RelativePositionBias(heads=1, max_distance=2,
                                    rng=np.random.default_rng(0))
        mat = bias(6).data[0]
        assert mat[0, 3] == pytest.approx(mat[0, 5])  # both clipped to +2

    def test_gradients_flow(self):
        bias = RelativePositionBias(heads=2, max_distance=3,
                                    rng=np.random.default_rng(0))
        out = bias(4)
        F.sum(F.mul(out, out)).backward()
        assert bias.table.grad is not None
        assert np.abs(bias.table.grad).sum() > 0


class TestPolicyLearning:
    def test_network_can_overfit_a_target_action(self):
        """REINFORCE-style updates must be able to concentrate the policy
        on a rewarded action — the minimal learning sanity check."""
        rng = np.random.default_rng(0)
        net = StrategyNetwork(6, 5, dim=16, heads=2, layers=1, seed=0)
        opt = Adam(net.parameters(), lr=5e-3)
        x = rng.normal(size=(3, 6))
        target = np.asarray([2, 0, 4])
        one_hot = np.eye(5)[target]
        for _ in range(150):
            logits = net(Tensor(x))
            logp = F.log_softmax(logits, axis=-1)
            loss = F.scale(F.sum(F.mul(logp, Tensor(one_hot))), -1.0)
            opt.zero_grad()
            loss.backward()
            opt.step()
        probs = np.exp(F.log_softmax(net(Tensor(x)), axis=-1).data)
        assert (probs.argmax(axis=-1) == target).all()
        assert probs[np.arange(3), target].min() > 0.8

    def test_entropy_decay_in_trainer(self):
        """The trainer anneals its entropy weight per episode."""
        from repro.agent import AgentConfig, HeteroGAgent
        from repro.cluster import cluster_4gpu
        from tests.helpers import make_mlp
        cfg = AgentConfig(max_groups=6, gat_hidden=16, gat_layers=2,
                          gat_heads=2, strategy_dim=16, strategy_heads=2,
                          strategy_layers=1, entropy_decay=0.9)
        agent = HeteroGAgent(cluster_4gpu(), cfg)
        agent.add_graph(make_mlp(name="entropy_mlp"))
        before = agent.trainer._entropy_weight
        agent.train(3)
        after = agent.trainer._entropy_weight
        assert after == pytest.approx(before * 0.9 ** 3)

    def test_rewards_trend_upward_with_seeds(self):
        """Best-so-far simulated time is monotonically non-increasing."""
        from repro.agent import AgentConfig, HeteroGAgent
        from repro.cluster import cluster_4gpu
        from tests.helpers import make_mlp
        cfg = AgentConfig(max_groups=8, gat_hidden=16, gat_layers=2,
                          gat_heads=2, strategy_dim=16, strategy_heads=2,
                          strategy_layers=1)
        agent = HeteroGAgent(cluster_4gpu(), cfg)
        agent.add_graph(make_mlp(name="trend_mlp"))
        best_curve = []
        for _ in range(8):
            agent.trainer.train_episode()
            best_curve.append(agent.best_time("trend_mlp"))
        assert all(b >= a - 1e-12 for a, b in zip(best_curve[1:],
                                                  best_curve[:-1]))
        assert best_curve[-1] < float("inf")
