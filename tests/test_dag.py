"""Unit tests for ComputationGraph."""

import pytest

from repro.errors import GraphError
from repro.graph.dag import ComputationGraph, subgraph_phases
from repro.graph.op import Operation, OpPhase, TensorSpec


def _op(name, **kw):
    defaults = dict(op_type="Relu", output=TensorSpec((2, 2)), flops=1.0)
    defaults.update(kw)
    return Operation(name=name, **defaults)


def chain(n=4):
    g = ComputationGraph("chain")
    prev = None
    for i in range(n):
        g.add_op(_op(f"n{i}"), [prev] if prev else [])
        prev = f"n{i}"
    return g


class TestConstruction:
    def test_add_and_lookup(self):
        g = chain(3)
        assert len(g) == 3
        assert g.op("n1").name == "n1"
        assert "n2" in g

    def test_duplicate_name_rejected(self):
        g = chain(2)
        with pytest.raises(GraphError):
            g.add_op(_op("n0"))

    def test_unknown_input_rejected(self):
        g = ComputationGraph("g")
        with pytest.raises(GraphError):
            g.add_op(_op("a"), ["missing"])

    def test_self_loop_rejected(self):
        g = chain(1)
        with pytest.raises(GraphError):
            g.add_edge("n0", "n0")

    def test_duplicate_edge_idempotent(self):
        g = chain(2)
        g.add_edge("n0", "n1")
        assert g.successors("n0") == ["n1"]

    def test_unknown_op_lookup(self):
        with pytest.raises(GraphError):
            chain(1).op("nope")


class TestQueries:
    def test_degrees(self):
        g = chain(3)
        assert g.in_degree("n0") == 0
        assert g.out_degree("n0") == 1
        assert g.in_degree("n2") == 1

    def test_sources_and_sinks(self):
        g = chain(3)
        assert g.sources() == ["n0"]
        assert g.sinks() == ["n2"]

    def test_edges_enumeration(self):
        g = chain(3)
        assert sorted(g.edges()) == [("n0", "n1"), ("n1", "n2")]
        assert g.num_edges() == 2

    def test_phases_partition(self):
        g = ComputationGraph("g")
        g.add_op(_op("f", phase=OpPhase.FORWARD))
        g.add_op(_op("b", phase=OpPhase.BACKWARD), ["f"])
        phases = subgraph_phases(g)
        assert phases[OpPhase.FORWARD] == ["f"]
        assert phases[OpPhase.BACKWARD] == ["b"]


class TestTopology:
    def test_topological_order_chain(self):
        assert chain(4).topological_order() == ["n0", "n1", "n2", "n3"]

    def test_topological_order_diamond(self):
        g = chain(1)
        g.add_op(_op("l"), ["n0"])
        g.add_op(_op("r"), ["n0"])
        g.add_op(_op("m"), ["l", "r"])
        order = g.topological_order()
        assert order.index("n0") < order.index("l") < order.index("m")
        assert order.index("r") < order.index("m")

    def test_cycle_detected(self):
        g = chain(3)
        # force a back edge (bypassing add_op's ordering)
        g._succ["n2"].append("n0")
        g._pred["n0"].append("n2")
        with pytest.raises(GraphError):
            g.topological_order()

    def test_validate_ok(self):
        chain(5).validate()

    def test_adjacency_matrix(self):
        g = chain(3)
        mat = g.adjacency_matrix()
        assert mat.shape == (3, 3)
        assert mat[0, 1] == 1.0 and mat[1, 2] == 1.0
        assert mat.sum() == 2.0


class TestBFS:
    def test_hop_distances_single_source(self):
        g = chain(4)
        dist = g.undirected_hop_distances(["n0"])
        assert dist["n3"] == (3, "n0")

    def test_hop_distances_multi_source_nearest(self):
        g = chain(5)
        dist = g.undirected_hop_distances(["n0", "n4"])
        assert dist["n1"][1] == "n0"
        assert dist["n3"][1] == "n4"

    def test_hop_distances_undirected(self):
        g = chain(3)
        dist = g.undirected_hop_distances(["n2"])
        assert dist["n0"] == (2, "n2")

    def test_unknown_source(self):
        with pytest.raises(GraphError):
            chain(2).undirected_hop_distances(["zzz"])


class TestStats:
    def test_total_flops(self):
        assert chain(3).total_flops() == 3.0

    def test_param_bytes_counts_forward_only(self):
        g = ComputationGraph("g")
        g.add_op(_op("f", param_bytes=100, phase=OpPhase.FORWARD))
        g.add_op(_op("b", param_bytes=100, phase=OpPhase.BACKWARD), ["f"])
        assert g.total_param_bytes() == 100

    def test_stats_keys(self):
        s = chain(2).stats()
        assert set(s) == {"ops", "edges", "total_flops", "param_bytes"}
