"""Tests for graph/strategy serialization and policy checkpoints."""

import numpy as np
import pytest

from repro.agent.checkpoint import load_policy, save_policy
from repro.baselines import dp_strategy
from repro.errors import GraphError, StrategyError
from repro.graph.models import build_model
from repro.graph.serialize import (
    graph_from_dict,
    graph_to_dict,
    graph_to_dot,
    load_graph,
    save_graph,
)
from repro.nn import StrategyNetwork, Tensor
from repro.parallel import make_mp_strategy, single_device_strategy
from repro.parallel.serialize import (
    load_strategy,
    save_strategy,
    strategy_from_dict,
    strategy_to_dict,
)

from tests.helpers import make_mlp


class TestGraphSerialization:
    def test_roundtrip_preserves_structure(self, tmp_path):
        graph = build_model("transformer", "tiny")
        path = tmp_path / "graph.json"
        save_graph(graph, str(path))
        loaded = load_graph(str(path))
        assert loaded.name == graph.name
        assert loaded.op_names == graph.op_names
        assert sorted(loaded.edges()) == sorted(graph.edges())

    def test_roundtrip_preserves_op_fields(self):
        graph = make_mlp(name="ser_mlp")
        loaded = graph_from_dict(graph_to_dict(graph))
        for name in graph.op_names:
            a, b = graph.op(name), loaded.op(name)
            assert a.op_type == b.op_type
            assert a.output.shape == b.output.shape
            assert a.flops == b.flops
            assert a.param_bytes == b.param_bytes
            assert a.phase == b.phase
            assert a.batch_scaled == b.batch_scaled

    def test_unknown_version_rejected(self):
        data = graph_to_dict(make_mlp(name="v_mlp"))
        data["format_version"] = 99
        with pytest.raises(GraphError):
            graph_from_dict(data)

    def test_missing_field_rejected(self):
        data = graph_to_dict(make_mlp(name="m_mlp"))
        del data["nodes"][0]["op_type"]
        with pytest.raises(GraphError):
            graph_from_dict(data)

    def test_dot_export(self):
        dot = graph_to_dot(make_mlp(name="dot_mlp"))
        assert dot.startswith("digraph")
        assert "->" in dot

    def test_dot_truncates(self):
        dot = graph_to_dot(make_mlp(name="dot2_mlp", layers=6), max_nodes=5)
        assert "more)" in dot


class TestStrategySerialization:
    def test_roundtrip(self, tmp_path, four_gpu):
        graph = make_mlp(name="st_mlp")
        strategy = dp_strategy("CP-AR", graph, four_gpu)
        strategy.set(graph.op_names[0], make_mp_strategy("gpu1"))
        path = tmp_path / "strategy.json"
        save_strategy(strategy, str(path))
        loaded = load_strategy(str(path), graph, four_gpu)
        for name in graph.op_names:
            assert loaded.get(name).label() == strategy.get(name).label()

    def test_wrong_graph_rejected(self, four_gpu):
        g1 = make_mlp(name="g1_mlp")
        g2 = make_mlp(name="g2_mlp")
        data = strategy_to_dict(single_device_strategy(g1, four_gpu))
        with pytest.raises(StrategyError):
            strategy_from_dict(data, g2, four_gpu)

    def test_wrong_cluster_rejected(self, four_gpu, eight_gpu):
        g = make_mlp(name="g3_mlp")
        data = strategy_to_dict(single_device_strategy(g, four_gpu))
        with pytest.raises(StrategyError):
            strategy_from_dict(data, g, eight_gpu)

    def test_unknown_kind_rejected(self, four_gpu):
        g = make_mlp(name="g4_mlp")
        data = strategy_to_dict(single_device_strategy(g, four_gpu))
        first = next(iter(data["per_op"]))
        data["per_op"][first]["kind"] = "quantum"
        with pytest.raises(StrategyError):
            strategy_from_dict(data, g, four_gpu)


class TestPolicyCheckpoint:
    def _net(self, seed=0, dim=8):
        return StrategyNetwork(4, 6, dim=dim, heads=2, layers=1, seed=seed)

    def test_roundtrip(self, tmp_path):
        net = self._net(seed=1)
        path = str(tmp_path / "policy.npz")
        save_policy(net, path)
        other = self._net(seed=7)
        load_policy(other, path)
        x = Tensor(np.random.default_rng(0).normal(size=(3, 4)))
        assert np.allclose(net(x).data, other(x).data)

    def test_architecture_mismatch_rejected(self, tmp_path):
        net = self._net()
        path = str(tmp_path / "policy.npz")
        save_policy(net, path)
        wrong = self._net(dim=16)
        with pytest.raises(StrategyError):
            load_policy(wrong, path)

    def test_not_a_checkpoint_rejected(self, tmp_path):
        path = str(tmp_path / "junk.npz")
        np.savez(path, a=np.zeros(3))
        with pytest.raises(StrategyError):
            load_policy(self._net(), path)
