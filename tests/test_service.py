"""Planning service: typed requests, coalescing, admission control,
and concurrency determinism."""

import threading
import time

import pytest

from repro import telemetry
from repro.agent import AgentConfig
from repro.cluster import cluster_4gpu
from repro.config import HeteroGConfig
from repro.errors import (
    ReproError,
    ServiceClosedError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.service import PlanRequest, PlanningService

from tests.helpers import make_mlp

FAST = AgentConfig(max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
                   strategy_dim=16, strategy_heads=2, strategy_layers=1)


def fast_config(seed: int = 0) -> HeteroGConfig:
    return HeteroGConfig(episodes=3, seed=seed, agent=FAST)


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


@pytest.fixture(scope="module")
def mlp():
    return make_mlp(name="svc_mlp")


def search_request(graph, cluster, *, episodes=3, seed=0, **kw) -> PlanRequest:
    return PlanRequest(graph=graph, cluster=cluster, episodes=episodes,
                       config=fast_config(seed), **kw)


class GatedService(PlanningService):
    """A service whose workers block in ``_serve`` until released —
    makes coalescing, overload, deadline and priority tests
    deterministic instead of racy."""

    def __init__(self, **kwargs):
        super().__init__(**kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()
        self.serve_order = []

    def _serve(self, request, queue_seconds):
        self.serve_order.append(request.label)
        self.entered.set()
        assert self.gate.wait(30), "test never released the service gate"
        return super()._serve(request, queue_seconds)


# --------------------------------------------------------------------- #
class TestRequestValidation:
    def test_graph_must_be_computation_graph(self, four_gpu):
        with pytest.raises(ReproError):
            PlanRequest(graph="not a graph", cluster=four_gpu)

    def test_strategy_type_checked(self, mlp, four_gpu):
        with pytest.raises(ReproError):
            PlanRequest(graph=mlp, cluster=four_gpu, strategy="CP-AR")

    @pytest.mark.parametrize("kwargs", [
        dict(episodes=0),
        dict(max_rounds=0),
        dict(measure_iterations=0),
        dict(timeout=0.0),
        dict(timeout=-1.0),
    ])
    def test_bounds_checked(self, mlp, four_gpu, kwargs):
        with pytest.raises(ReproError):
            PlanRequest(graph=mlp, cluster=four_gpu, **kwargs)

    def test_device_info_parsed_at_boundary(self, mlp):
        request = PlanRequest(graph=mlp, cluster=[
            {"host": "a", "gpu_model": "Tesla V100", "gpus": 2}])
        assert request.cluster.num_devices == 2

    def test_bad_device_info_is_repro_error(self, mlp):
        with pytest.raises(ReproError, match="known"):
            PlanRequest(graph=mlp, cluster=[
                {"host": "a", "gpu_model": "TPUv9", "gpus": 2}])
        with pytest.raises(ReproError):
            PlanRequest(graph=mlp, cluster=[{"gpus": 2}])
        with pytest.raises(ReproError):
            PlanRequest(graph=mlp, cluster=[
                {"gpu_model": "Tesla V100", "gpus": "many"}])
        with pytest.raises(ReproError):
            PlanRequest(graph=mlp, cluster=42)

    def test_fingerprint_separates_work(self, mlp, four_gpu):
        a = search_request(mlp, four_gpu, episodes=3)
        b = search_request(mlp, four_gpu, episodes=4)
        c = search_request(mlp, four_gpu, episodes=3)
        assert a.fingerprint == c.fingerprint
        assert a.fingerprint != b.fingerprint
        assert a.context_key == b.context_key  # same warm session though

    def test_label_and_timeout_not_fingerprinted(self, mlp, four_gpu):
        a = search_request(mlp, four_gpu, label="x", timeout=5.0, priority=2)
        b = search_request(mlp, four_gpu)
        assert a.fingerprint == b.fingerprint


class TestServiceValidation:
    @pytest.mark.parametrize("kwargs", [
        dict(workers=-1),
        dict(max_queue=0),
        dict(max_contexts=0),
    ])
    def test_constructor_bounds(self, kwargs):
        with pytest.raises(ReproError):
            PlanningService(**kwargs)

    def test_submit_requires_plan_request(self, four_gpu):
        with PlanningService(workers=0) as service:
            with pytest.raises(ReproError):
                service.submit("plan please")

    def test_closed_service_rejects(self, mlp, four_gpu):
        service = PlanningService(workers=0)
        service.close()
        with pytest.raises(ServiceClosedError):
            service.submit(search_request(mlp, four_gpu))


# --------------------------------------------------------------------- #
class TestInlineService:
    """workers=0: the deterministic synchronous mode facades use."""

    def test_search_and_result_cache(self, mlp, four_gpu):
        with PlanningService(workers=0) as service:
            first = service.plan(search_request(mlp, four_gpu))
            again = service.plan(search_request(mlp, four_gpu))
        assert first.feasible and first.deployment is not None
        assert not first.from_cache and again.from_cache
        assert again.strategy is first.strategy
        assert service.stats.executed == 1
        assert service.stats.result_hits == 1

    def test_build_reuses_warm_context(self, mlp, four_gpu):
        with PlanningService(workers=0) as service:
            searched = service.plan(search_request(mlp, four_gpu))
            built = service.plan(PlanRequest(
                graph=mlp, cluster=four_gpu, strategy=searched.strategy,
                config=fast_config()))
        assert built.reused_context
        assert built.deployment is not None
        assert built.outcome.feasible

    def test_failure_not_cached(self, mlp, four_gpu):
        """A failed request must not poison the result cache."""
        from repro.parallel import single_device_strategy
        other = make_mlp(name="svc_other", layers=1)
        # a strategy for a smaller graph is missing ops of ``mlp``
        bad = single_device_strategy(other, four_gpu)
        with PlanningService(workers=0) as service:
            def doomed():
                return PlanRequest(graph=mlp, cluster=four_gpu, strategy=bad,
                                   config=fast_config())
            with pytest.raises(ReproError):
                service.plan(doomed())
            assert service.stats.failed == 1
            # the failure was not recorded as a servable result
            with pytest.raises(ReproError):
                service.plan(doomed())
            assert service.stats.result_hits == 0


# --------------------------------------------------------------------- #
class TestCoalescing:
    def test_concurrent_duplicates_coalesce_bit_identical(self, mlp,
                                                          four_gpu):
        """N concurrent duplicates -> exactly 1 evaluation, N-1 coalesced
        (counted by ``service_coalesced_total``), results bit-identical
        to naive serial replanning."""
        duplicates = 5

        # serial baseline: each request replans on a cold service
        serial = []
        for _ in range(2):
            with PlanningService(workers=0) as cold:
                serial.append(cold.plan(search_request(mlp, four_gpu)))

        registry = telemetry.MetricsRegistry()
        with telemetry.session(registry=registry):
            service = GatedService(workers=2)
            try:
                tickets = [service.submit(search_request(mlp, four_gpu))
                           for _ in range(duplicates)]
                # all five share the single in-flight ticket
                assert len({id(t) for t in tickets}) == 1
                service.gate.set()
                results = [t.result(30.0) for t in tickets]
            finally:
                service.gate.set()
                service.close()

        assert service.stats.executed == 1
        assert service.stats.coalesced == duplicates - 1
        coalesced = registry.get("service_coalesced_total")
        assert coalesced is not None and coalesced.value == duplicates - 1
        assert results[0].coalesced == duplicates - 1

        label = {n: s.label() for n, s in serial[0].strategy.items()}
        for result in serial[1:] + results:
            assert {n: s.label() for n, s in result.strategy.items()} == label
            assert result.outcome.time == serial[0].outcome.time

    def test_late_duplicates_hit_result_cache(self, mlp, four_gpu):
        with PlanningService(workers=2) as service:
            first = service.plan(search_request(mlp, four_gpu))
            late = service.plan(search_request(mlp, four_gpu))
        assert late.from_cache
        assert late.outcome.time == first.outcome.time
        assert service.stats.executed == 1


# --------------------------------------------------------------------- #
class TestAdmissionControl:
    def test_overload_rejects_structured(self, mlp, four_gpu):
        service = GatedService(workers=1, max_queue=1)
        try:
            blocker = service.submit(
                search_request(mlp, four_gpu, episodes=1, label="blocker"))
            assert service.entered.wait(10)  # worker busy, queue empty
            service.submit(search_request(mlp, four_gpu, episodes=2,
                                          label="queued"))
            with pytest.raises(ServiceOverloadedError) as exc:
                service.submit(search_request(mlp, four_gpu, episodes=3,
                                              label="rejected"))
            assert exc.value.queue_depth == 1
            assert exc.value.limit == 1
            assert service.stats.rejected == 1
        finally:
            service.gate.set()
            blocker.result(30.0)
            service.close()

    def test_queue_deadline_fails_fast_without_evaluating(self, mlp,
                                                          four_gpu):
        registry = telemetry.MetricsRegistry()
        with telemetry.session(registry=registry):
            service = GatedService(workers=1, max_queue=8)
            try:
                blocker = service.submit(
                    search_request(mlp, four_gpu, episodes=1,
                                   label="blocker"))
                assert service.entered.wait(10)
                doomed = service.submit(
                    search_request(mlp, four_gpu, episodes=2,
                                   label="doomed", timeout=0.05))
                time.sleep(0.2)        # let the deadline lapse while queued
                service.gate.set()
                with pytest.raises(ServiceTimeoutError) as exc:
                    doomed.result(30.0)
                assert exc.value.stage == "queue"
                blocker.result(30.0)
                # the expired request was never served
                assert service.serve_order == ["blocker"]
                assert service.stats.timeouts == 1
                # ... and did not poison the cache: the same fingerprint
                # evaluates successfully afterwards
                retry = service.plan(
                    search_request(mlp, four_gpu, episodes=2, label="retry"))
                assert retry.feasible and not retry.from_cache
            finally:
                service.gate.set()
                service.close()
        timeouts = registry.get("service_timeouts_total",
                                labels={"stage": "queue"})
        assert timeouts is not None and timeouts.value == 1

    def test_wait_timeout_leaves_computation_running(self, mlp, four_gpu):
        service = GatedService(workers=1)
        try:
            request = search_request(mlp, four_gpu, timeout=0.05)
            with pytest.raises(ServiceTimeoutError) as exc:
                service.plan(request)
            assert exc.value.stage == "wait"
            service.gate.set()
            # the in-flight computation completes and is cached; a later
            # identical request is served without re-evaluating
            result = service.plan(search_request(mlp, four_gpu))
            assert result.feasible
            assert service.stats.executed == 1
        finally:
            service.gate.set()
            service.close()

    def test_close_fails_queued_requests(self, mlp, four_gpu):
        service = GatedService(workers=1)
        blocker = service.submit(
            search_request(mlp, four_gpu, episodes=1, label="blocker"))
        assert service.entered.wait(10)
        queued = service.submit(
            search_request(mlp, four_gpu, episodes=2, label="queued"))
        # close() first drains the queue (failing pending tickets), then
        # joins the workers — release the gate only after the drain so
        # the queued request is deterministically failed, not served
        closer = threading.Thread(target=service.close)
        closer.start()
        with pytest.raises(ServiceClosedError):
            queued.result(10.0)
        service.gate.set()
        blocker.result(30.0)  # the in-flight request still completed
        closer.join(30.0)
        assert not closer.is_alive()
        with pytest.raises(ServiceClosedError):
            service.submit(search_request(mlp, four_gpu, episodes=3))

    def test_priority_orders_the_queue(self, mlp, four_gpu):
        service = GatedService(workers=1)
        try:
            tickets = [service.submit(
                search_request(mlp, four_gpu, episodes=1, label="blocker"))]
            assert service.entered.wait(10)
            tickets.append(service.submit(
                search_request(mlp, four_gpu, episodes=2, label="low",
                               priority=0)))
            tickets.append(service.submit(
                search_request(mlp, four_gpu, episodes=3, label="high",
                               priority=5)))
            service.gate.set()
            for ticket in tickets:
                ticket.result(30.0)
            assert service.serve_order == ["blocker", "high", "low"]
        finally:
            service.gate.set()
            service.close()


# --------------------------------------------------------------------- #
class TestServiceTelemetry:
    def test_request_metrics_emitted(self, mlp, four_gpu):
        registry = telemetry.MetricsRegistry()
        with telemetry.session(registry=registry):
            with PlanningService(workers=2) as service:
                service.plan(search_request(mlp, four_gpu))
        completed = registry.get("service_requests_total",
                                 labels={"status": "completed"})
        assert completed is not None and completed.value == 1
        latency = registry.get("service_latency_seconds")
        assert latency is not None and latency.total == 1
        depth = registry.get("service_queue_depth")
        assert depth is not None and depth.value == 0

    def test_pipeline_spans_survive_the_redesign(self, mlp, four_gpu):
        """The service still emits the pipeline.* spans reporting needs."""
        with telemetry.session() as tel:
            with PlanningService(workers=0) as service:
                service.plan(search_request(mlp, four_gpu))
        names = {event["name"] for event in tel.tracer.to_events()}
        assert {"service.request", "pipeline.profile", "pipeline.group",
                "pipeline.search", "pipeline.schedule"} <= names
