"""The cached ExecutionPlan layer: fingerprints, caches, batch eval."""

from __future__ import annotations

import pytest

from repro import telemetry
from repro.baselines import DP_BASELINES, dp_strategy
from repro.errors import CompileError
from repro.parallel.strategy import single_device_strategy
from repro.plan import BatchEvaluator, PlanBuilder, PlanCache
from repro.profiling import MeasurementNoise, Profiler


@pytest.fixture()
def builder(mlp_graph, four_gpu, mlp_profile):
    return PlanBuilder(mlp_graph, four_gpu, mlp_profile)


def fresh_builder(mlp_graph, four_gpu, mlp_profile, **kwargs):
    return PlanBuilder(mlp_graph, four_gpu, mlp_profile, **kwargs)


# --------------------------------------------------------------------- #
# fingerprints
# --------------------------------------------------------------------- #
class TestFingerprint:
    def test_stable_across_rebuilds(self, mlp_graph, four_gpu, mlp_profile,
                                    builder):
        s1 = dp_strategy("EV-AR", mlp_graph, four_gpu)
        s2 = dp_strategy("EV-AR", mlp_graph, four_gpu)
        assert builder.fingerprint(s1) == builder.fingerprint(s2)
        other = fresh_builder(mlp_graph, four_gpu, mlp_profile)
        assert other.fingerprint(s1) == builder.fingerprint(s1)

    def test_distinct_strategies_distinct_fingerprints(self, mlp_graph,
                                                       four_gpu, builder):
        fps = {
            builder.fingerprint(dp_strategy(name, mlp_graph, four_gpu))
            for name in DP_BASELINES
        }
        fps.add(builder.fingerprint(
            single_device_strategy(mlp_graph, four_gpu)))
        assert len(fps) == len(DP_BASELINES) + 1

    def test_context_changes_fingerprint(self, mlp_graph, four_gpu,
                                         mlp_profile, builder):
        s = dp_strategy("CP-AR", mlp_graph, four_gpu)
        fifo = fresh_builder(mlp_graph, four_gpu, mlp_profile,
                             use_order_scheduling=False)
        assert fifo.context_fingerprint != builder.context_fingerprint
        assert fifo.fingerprint(s) != builder.fingerprint(s)

    def test_profile_changes_fingerprint(self, mlp_graph, four_gpu,
                                         mlp_profile, builder):
        noisy = Profiler(noise=MeasurementNoise(0.3), seed=7).profile(
            mlp_graph, four_gpu
        )
        other = PlanBuilder(mlp_graph, four_gpu, noisy)
        s = dp_strategy("EV-PS", mlp_graph, four_gpu)
        assert other.fingerprint(s) != builder.fingerprint(s)


# --------------------------------------------------------------------- #
# PlanCache
# --------------------------------------------------------------------- #
class TestPlanCache:
    def test_lru_eviction_order(self):
        cache = PlanCache(2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refresh "a": "b" is now LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.evictions == 1
        assert len(cache) == 2

    def test_hit_miss_accounting(self):
        cache = PlanCache(4)
        assert cache.get("x") is None
        cache.put("x", 42)
        assert cache.get("x") == 42
        assert (cache.hits, cache.misses) == (1, 1)  # miss before the put
        assert cache.hit_rate == pytest.approx(0.5)

    def test_rejects_degenerate_size(self):
        with pytest.raises(ValueError):
            PlanCache(0)


# --------------------------------------------------------------------- #
# cached vs fresh evaluation
# --------------------------------------------------------------------- #
class TestEvaluationCaching:
    def test_cache_hit_equals_uncached(self, mlp_graph, four_gpu,
                                       mlp_profile, builder):
        s = dp_strategy("EV-AR", mlp_graph, four_gpu)
        first = builder.evaluate(s)
        second = builder.evaluate(s)
        assert second is first  # served from the outcome cache
        assert builder.outcome_cache.hits == 1

        uncached = fresh_builder(mlp_graph, four_gpu, mlp_profile).evaluate(s)
        assert uncached.time == first.time
        assert uncached.oom == first.oom
        assert uncached.infeasible == first.infeasible
        assert uncached.dist_ops == first.dist_ops

    def test_plan_reused_across_strategies(self, mlp_graph, four_gpu,
                                           builder):
        s = dp_strategy("CP-PS", mlp_graph, four_gpu)
        plan1 = builder.build(s)
        plan2 = builder.build(dp_strategy("CP-PS", mlp_graph, four_gpu))
        assert plan2 is plan1
        assert plan1.fingerprint == builder.fingerprint(s)

    def test_trace_bypasses_outcome_cache(self, mlp_graph, four_gpu,
                                          builder):
        s = dp_strategy("EV-PS", mlp_graph, four_gpu)
        cached = builder.evaluate(s)
        traced = builder.evaluate(s, trace=True)
        assert traced is not cached
        assert traced.time == cached.time
        assert traced.result.device_busy  # traced run keeps the schedule

    def test_infeasible_not_recompiled(self, mlp_graph, four_gpu,
                                       mlp_profile, monkeypatch):
        from repro.plan import builder as builder_mod

        calls = {"n": 0}

        def failing_compile(self, graph, strategy):
            calls["n"] += 1
            raise CompileError("forced failure")

        monkeypatch.setattr(builder_mod.GraphCompiler, "compile",
                            failing_compile)
        b = fresh_builder(mlp_graph, four_gpu, mlp_profile)
        s = dp_strategy("EV-AR", mlp_graph, four_gpu)
        first = b.evaluate(s)
        assert first.infeasible and not first.feasible
        assert first.time == float("inf")
        second = b.evaluate(s)
        assert second is first
        assert calls["n"] == 1  # the failure itself was cached

    def test_oom_outcome_cached(self, mlp_graph, four_gpu, mlp_profile):
        b = fresh_builder(mlp_graph, four_gpu, mlp_profile)
        for dev in b.capacities:
            b.capacities[dev] = 1  # nothing fits
        s = dp_strategy("EV-AR", mlp_graph, four_gpu)
        first = b.evaluate(s)
        assert first.oom and not first.feasible
        second = b.evaluate(s)
        assert second is first
        assert b.outcome_cache.hits == 1


# --------------------------------------------------------------------- #
# BatchEvaluator
# --------------------------------------------------------------------- #
class TestBatchEvaluator:
    def candidates(self, graph, cluster):
        strategies = [dp_strategy(n, graph, cluster) for n in DP_BASELINES]
        strategies.append(single_device_strategy(graph, cluster))
        return strategies

    def test_parallel_matches_serial(self, mlp_graph, four_gpu, mlp_profile):
        strategies = self.candidates(mlp_graph, four_gpu)
        serial = [
            fresh_builder(mlp_graph, four_gpu, mlp_profile).evaluate(s)
            for s in strategies
        ]
        with BatchEvaluator(fresh_builder(mlp_graph, four_gpu, mlp_profile),
                            max_workers=2) as batch:
            parallel = batch.evaluate(strategies)
        assert [o.time for o in parallel] == [o.time for o in serial]
        assert [o.oom for o in parallel] == [o.oom for o in serial]
        assert [o.dist_ops for o in parallel] == [o.dist_ops for o in serial]

    def test_input_order_preserved(self, mlp_graph, four_gpu, mlp_profile):
        strategies = self.candidates(mlp_graph, four_gpu)
        b = fresh_builder(mlp_graph, four_gpu, mlp_profile)
        batch = BatchEvaluator(b)
        outcomes = batch.evaluate(strategies)
        for s, outcome in zip(strategies, outcomes):
            assert outcome.time == b.evaluate(s).time

    def test_duplicates_evaluated_once(self, mlp_graph, four_gpu,
                                       mlp_profile):
        s = dp_strategy("EV-AR", mlp_graph, four_gpu)
        b = fresh_builder(mlp_graph, four_gpu, mlp_profile)
        batch = BatchEvaluator(b)
        outcomes = batch.evaluate([s, s, s])
        assert outcomes[0] is outcomes[1] is outcomes[2]
        # one batch-level lookup plus the single fresh evaluation's own
        # lookup -- NOT three evaluations
        assert b.outcome_cache.misses == 2
        assert b.outcome_cache.hits == 0

    def test_parent_cache_served_and_seeded(self, mlp_graph, four_gpu,
                                            mlp_profile):
        strategies = self.candidates(mlp_graph, four_gpu)
        b = fresh_builder(mlp_graph, four_gpu, mlp_profile)
        warm = b.evaluate(strategies[0])
        batch = BatchEvaluator(b)
        outcomes = batch.evaluate(strategies)
        assert outcomes[0] is warm  # pre-cached outcome reused verbatim
        # fresh results were folded back into the parent cache
        again = batch.evaluate(strategies)
        assert [o.time for o in again] == [o.time for o in outcomes]
        assert b.outcome_cache.hit_rate > 0

    def test_multi_context_pairs(self, mlp_graph, tiny_vgg, four_gpu,
                                 mlp_profile, vgg_profile):
        evaluator = BatchEvaluator({
            "mlp": PlanBuilder(mlp_graph, four_gpu, mlp_profile),
            "vgg": PlanBuilder(tiny_vgg, four_gpu, vgg_profile),
        })
        pairs = [
            ("mlp", dp_strategy("EV-AR", mlp_graph, four_gpu)),
            ("vgg", dp_strategy("EV-AR", tiny_vgg, four_gpu)),
            ("mlp", dp_strategy("CP-AR", mlp_graph, four_gpu)),
        ]
        outcomes = evaluator.evaluate_pairs(pairs)
        assert len(outcomes) == 3
        assert all(o.feasible for o in outcomes)
        assert outcomes[0].time != outcomes[1].time  # different graphs

    def test_context_required_when_ambiguous(self, mlp_graph, four_gpu,
                                             mlp_profile):
        evaluator = BatchEvaluator({
            "a": fresh_builder(mlp_graph, four_gpu, mlp_profile),
            "b": fresh_builder(mlp_graph, four_gpu, mlp_profile),
        })
        with pytest.raises(ValueError):
            evaluator.evaluate([dp_strategy("EV-AR", mlp_graph, four_gpu)])

    def test_rejects_bad_worker_count(self, builder):
        with pytest.raises(ValueError):
            BatchEvaluator(builder, max_workers=0)


# --------------------------------------------------------------------- #
# telemetry integration
# --------------------------------------------------------------------- #
class TestPlanTelemetry:
    def test_cache_counters_exported(self, mlp_graph, four_gpu, mlp_profile):
        s = dp_strategy("EV-AR", mlp_graph, four_gpu)
        with telemetry.session() as tel:
            b = fresh_builder(mlp_graph, four_gpu, mlp_profile)
            b.evaluate(s)
            b.evaluate(s)
            hits = tel.registry.get("plan_cache_hits_total",
                                    {"kind": "outcome"})
            misses = tel.registry.get("plan_cache_misses_total",
                                      {"kind": "outcome"})
            assert hits is not None and hits.value == 1
            assert misses is not None and misses.value >= 1

    def test_counters_silent_without_session(self, mlp_graph, four_gpu,
                                             builder):
        # must not raise or create a registry when telemetry is disabled
        builder.evaluate(dp_strategy("EV-AR", mlp_graph, four_gpu))
        assert telemetry.active() is None
