"""Shared test helpers (importable, unlike conftest)."""

from __future__ import annotations

from repro.graph import GraphBuilder, build_training_graph
from repro.graph.dag import ComputationGraph


def make_mlp(batch_size: int = 8, layers: int = 3, width: int = 32,
             name: str = "mlp") -> ComputationGraph:
    """A small dense training graph used across tests."""
    b = GraphBuilder(name, batch_size)
    x = b.input((16,))
    for i in range(layers):
        x = b.dense(x, width, layer=f"fc{i}")
        x = b.activation(x, layer=f"fc{i}")
    b.softmax_loss(x, 10)
    return build_training_graph(b)
