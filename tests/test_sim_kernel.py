"""Golden-equivalence suite for the array-lowered simulation kernel.

The kernel engine (``engine="kernel"``, the default) must be
*bit-identical* to the original dict-based event loop, which is kept in
the tree as ``engine="reference"``.  These tests pair the two engines
over compiled model graphs and crafted edge cases and compare every
observable: the full schedule trace, makespan, busy/overlap metrics,
peak memory, the OOM device set, and — for deadlocks — the exact error
message bytes.
"""

from __future__ import annotations

import random

import pytest

from repro import telemetry
from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.errors import SimulationError
from repro.graph.models import build_model
from repro.parallel.compiler import GraphCompiler
from repro.parallel.distgraph import DistGraph, DistOp, DistOpKind
from repro.parallel.strategy import (
    CommMethod,
    ReplicaAllocation,
    Strategy,
    make_dp_strategy,
    make_mp_strategy,
)
from repro.plan import PlanBuilder
from repro.profiling import Profiler
from repro.simulation import ProfileCostModel, Simulator, TruthCostModel
from repro.simulation.costs import MappingCostModel
from repro.simulation.kernel import lower


def assert_results_identical(a, b) -> None:
    """Every observable of two SimulationResults must match exactly."""
    assert a.makespan == b.makespan
    assert a.device_busy == b.device_busy
    assert a.link_busy == b.link_busy
    assert a.communication_time == b.communication_time
    assert a.computation_wall == b.computation_wall
    assert a.peak_memory == b.peak_memory
    assert a.oom_devices == b.oom_devices
    assert a.schedule == b.schedule


def run_pair(make_cost, dist, **kw):
    """Run both engines on fresh cost providers; compare outcome or error."""
    try:
        a = Simulator(make_cost()).run(dist, engine="kernel", **kw)
    except SimulationError as exc:
        with pytest.raises(SimulationError) as err:
            Simulator(make_cost()).run(dist, engine="reference", **kw)
        assert str(err.value) == str(exc)
        return None
    b = Simulator(make_cost()).run(dist, engine="reference", **kw)
    assert_results_identical(a, b)
    return a


# --------------------------------------------------------------------- #
# paired fuzz over compiled model graphs
# --------------------------------------------------------------------- #
@pytest.fixture(scope="module", params=["inception_v3", "bert_large"])
def compiled(request):
    model = request.param
    cluster = cluster_4gpu() if model == "inception_v3" else cluster_8gpu()
    graph = build_model(model, "tiny")
    profile = Profiler(seed=0).profile(graph, cluster)
    rng = random.Random(1234)
    options = [make_mp_strategy(d) for d in cluster.device_ids]
    for alloc in (ReplicaAllocation.EVEN, ReplicaAllocation.PROPORTIONAL):
        for comm in (CommMethod.PS, CommMethod.ALLREDUCE):
            options.append(make_dp_strategy(cluster, alloc, comm))
    strategy = Strategy(
        graph, cluster, {n: rng.choice(options) for n in graph.op_names}
    )
    compiler = GraphCompiler(cluster, profile)
    dist = compiler.compile(graph, strategy)
    caps = {d.device_id: d.usable_memory_bytes for d in cluster.devices}
    return cluster, profile, dist, dict(compiler.resident_bytes), caps


COST_MAKERS = [
    ("profile", lambda cl, pr: ProfileCostModel(cl, pr)),
    ("truth-jitter", lambda cl, pr: TruthCostModel(cl, jitter_sigma=0.05,
                                                   seed=7)),
    ("truth-exact", lambda cl, pr: TruthCostModel(cl, jitter_sigma=0.0,
                                                  seed=7)),
]


@pytest.mark.parametrize("cost_name,make", COST_MAKERS,
                         ids=[c[0] for c in COST_MAKERS])
def test_engines_identical_on_compiled_graphs(compiled, cost_name, make):
    cluster, profile, dist, resident, caps = compiled
    names = dist.op_names
    perm = list(range(len(names)))
    random.Random(99).shuffle(perm)
    prio_sets = [
        None,                                          # FIFO (tie counter)
        {n: i for i, n in enumerate(names)},           # distinct priorities
        {n: perm[i] for i, n in enumerate(names)},     # shuffled distinct
        {n: perm[i] % 7 for i, n in enumerate(names)},  # heavy ties
    ]
    for prios in prio_sets:
        for strict in (False, True) if prios is not None else (False,):
            run_pair(
                lambda: make(cluster, profile), dist,
                priorities=prios, resident_bytes=dict(resident),
                capacities=caps, trace=True, strict=strict,
            )


def test_memory_pressure_oom_sets_identical(compiled):
    """Shrunken capacities force OOM; both engines must flag the same
    devices at the same peaks."""
    cluster, profile, dist, resident, caps = compiled
    tight = {d: max(1, int(c * 1e-4)) for d, c in caps.items()}
    result = run_pair(
        lambda: ProfileCostModel(cluster, profile), dist,
        resident_bytes=dict(resident), capacities=tight, trace=True,
    )
    assert result is not None and result.oom


# --------------------------------------------------------------------- #
# crafted edge cases
# --------------------------------------------------------------------- #
def _chain_graph() -> DistGraph:
    g = DistGraph("chain")
    for i in range(4):
        g.add(DistOp(f"op{i}", DistOpKind.SPLIT, device="gpu0",
                     size_bytes=64.0),
              deps=[f"op{i - 1}"] if i else [])
    return g


def test_cycle_deadlock_messages_byte_equal():
    """A cycle (crafted via direct adjacency mutation, like the engine
    edge-case tests do) must deadlock both engines with the same text."""
    g = _chain_graph()
    g._succ["op3"].append("op0")
    g._pred["op0"].append("op3")
    cost = MappingCostModel({}, default=1.0)
    run_pair(lambda: cost, g)


def test_strict_priority_inversion_deadlock():
    """Strict mode with priorities that invert the DAG order deadlocks;
    the error text must match the reference engine byte for byte."""
    g = _chain_graph()
    inverted = {f"op{i}": 10 - i for i in range(4)}
    cost = MappingCostModel({}, default=1.0)
    run_pair(lambda: cost, g, priorities=inverted, strict=True)


def test_direct_adjacency_mutation_falls_back_to_string_tables():
    """tests mutate ``_succ``/``_pred`` directly without the int mirror;
    lowering must detect the desync and rebuild from the string tables."""
    g = _chain_graph()
    extra = g.add(DistOp("late", DistOpKind.SPLIT, device="gpu0",
                         size_bytes=64.0))
    g._succ["op3"].append(extra.name)
    g._pred[extra.name].append("op3")
    kernel = lower(g)
    idx = kernel.index
    assert kernel.succ[idx["op3"]] == (idx["late"],)
    assert kernel.pred[idx["late"]] == (idx["op3"],)
    cost = MappingCostModel({}, default=1.0)
    run_pair(lambda: cost, g, trace=True)


# --------------------------------------------------------------------- #
# kernel caching semantics
# --------------------------------------------------------------------- #
def test_lowering_cached_until_mutation():
    g = _chain_graph()
    k1 = lower(g)
    assert lower(g) is k1
    g.add(DistOp("tail", DistOpKind.SPLIT, device="gpu0", size_bytes=1.0),
          deps=["op3"])
    k2 = lower(g)
    assert k2 is not k1
    assert k2.version == g.version
    assert k2.n == len(g)


def test_duration_array_cached_per_deterministic_provider():
    g = _chain_graph()
    kernel = lower(g)
    det = MappingCostModel({}, default=2.0)
    first = kernel.durations_for(det)
    assert first == [2.0] * len(g)
    assert kernel.durations_for(det) is first
    stochastic = TruthCostModel(cluster_4gpu(), jitter_sigma=0.1, seed=3)
    assert kernel.durations_for(stochastic) is None


def test_topo_matches_graph_topological_order():
    g = _chain_graph()
    kernel = lower(g)
    assert [kernel.names[i] for i in kernel.topo] == g.topological_order()
    assert not kernel.has_cycle


# --------------------------------------------------------------------- #
# single-pass scheduling through the plan layer
# --------------------------------------------------------------------- #
def test_cold_evaluate_runs_exactly_two_simulations():
    """Single-pass scheduling: a cold evaluate costs the two candidate-
    order simulations and nothing more (the winner's result is reused)."""
    cluster = cluster_4gpu()
    graph = build_model("vgg19", "tiny")
    profile = Profiler(seed=0).profile(graph, cluster)
    strategy = Strategy(
        graph, cluster,
        {n: make_dp_strategy(cluster, ReplicaAllocation.EVEN, CommMethod.PS)
         for n in graph.op_names},
    )
    builder = PlanBuilder(graph, cluster, profile)
    tel = telemetry.enable()
    try:
        outcome = builder.evaluate(strategy)
        runs = tel.registry.get("sim_runs_total")
        assert runs is not None and runs.value == 2
    finally:
        telemetry.disable()
    plan = builder.build(strategy)
    assert outcome.result is plan.sim_result
    assert outcome.time == plan.sim_result.makespan


def test_plan_reuses_one_lowering_for_schedule_and_resimulation():
    cluster = cluster_4gpu()
    graph = build_model("vgg19", "tiny")
    profile = Profiler(seed=0).profile(graph, cluster)
    strategy = Strategy(
        graph, cluster,
        {n: make_mp_strategy(cluster.device_ids[0])
         for n in graph.op_names},
    )
    builder = PlanBuilder(graph, cluster, profile)
    plan = builder.build(strategy)
    assert plan.kernel is lower(plan.dist)
    resim = builder.simulate(plan)
    assert resim.makespan == plan.sim_result.makespan
