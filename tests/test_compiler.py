"""Tests for the Graph Compiler (replication, routing, aggregation)."""

import pytest

from repro.graph.op import OpPhase
from repro.parallel import (
    CommMethod,
    DistOpKind,
    GraphCompiler,
    ParallelKind,
    ReplicaAllocation,
    make_dp_strategy,
    make_mp_strategy,
    single_device_strategy,
    uniform_strategy,
)


def compile_with(graph, cluster, strategy, profile=None):
    compiler = GraphCompiler(cluster, profile)
    return compiler, compiler.compile(graph, strategy)


class TestSingleDevice:
    def test_no_communication(self, mlp_graph, four_gpu):
        _, dist = compile_with(mlp_graph, four_gpu,
                               single_device_strategy(mlp_graph, four_gpu))
        assert not dist.communication_ops()

    def test_one_instance_per_op(self, mlp_graph, four_gpu):
        _, dist = compile_with(mlp_graph, four_gpu,
                               single_device_strategy(mlp_graph, four_gpu))
        # every original op appears exactly once (no split/concat needed)
        compute = [o for o in dist if o.kind in
                   (DistOpKind.COMPUTE, DistOpKind.APPLY)]
        assert len(compute) == len(mlp_graph)

    def test_resident_memory_on_one_device(self, mlp_graph, four_gpu):
        compiler, _ = compile_with(
            mlp_graph, four_gpu, single_device_strategy(mlp_graph, four_gpu)
        )
        from repro.profiling.cost_model import RESIDENT_OVERHEAD
        resident = compiler.resident_bytes
        assert resident["gpu0"] == pytest.approx(
            RESIDENT_OVERHEAD * mlp_graph.total_param_bytes(), rel=0.01)
        assert all(resident[d] == 0 for d in ("gpu1", "gpu2", "gpu3"))


class TestDataParallel:
    def test_even_replication_instances(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        # each replicable op has one instance per device
        for op in mlp_graph:
            if op.is_replicable and op.phase is not OpPhase.APPLY:
                assert len(dist.instances[op.name]) == 4

    def test_allreduce_per_param_gradient(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        pgrads = [o for o in mlp_graph if o.produces_param_gradient]
        collectives = [o for o in dist if o.kind is DistOpKind.ALLREDUCE]
        assert len(collectives) == len(pgrads)

    def test_allreduce_followed_by_local_applies(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        for op in dist:
            if op.kind is DistOpKind.ALLREDUCE:
                succ = [dist.op(s) for s in dist.successors(op.name)]
                assert len(succ) == 4
                assert all(s.kind is DistOpKind.APPLY for s in succ)

    def test_ps_chain_structure(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.PS))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        aggregates = [o for o in dist if o.kind is DistOpKind.AGGREGATE]
        pgrads = [o for o in mlp_graph if o.produces_param_gradient]
        assert len(aggregates) == len(pgrads)
        for agg in aggregates:
            # 3 pushes in (PS colocated with the 4th replica)
            pushes = [dist.op(p) for p in dist.predecessors(agg.name)
                      if dist.op(p).kind is DistOpKind.TRANSFER]
            assert len(pushes) == 3
            # one apply out, then pulls to the other devices
            (apply_name,) = dist.successors(agg.name)
            apply_op = dist.op(apply_name)
            assert apply_op.kind is DistOpKind.APPLY
            pulls = [dist.op(s) for s in dist.successors(apply_name)]
            assert len(pulls) == 3
            assert all(p.kind is DistOpKind.TRANSFER for p in pulls)

    def test_no_aggregation_without_replication(self, mlp_graph, four_gpu):
        _, dist = compile_with(mlp_graph, four_gpu,
                               single_device_strategy(mlp_graph, four_gpu))
        kinds = dist.counts_by_kind()
        assert DistOpKind.ALLREDUCE not in kinds
        assert DistOpKind.AGGREGATE not in kinds

    def test_dp_params_resident_everywhere(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        from repro.profiling.cost_model import RESIDENT_OVERHEAD
        compiler, _ = compile_with(mlp_graph, four_gpu, st)
        expect = RESIDENT_OVERHEAD * mlp_graph.total_param_bytes()
        for dev in four_gpu.device_ids:
            assert compiler.resident_bytes[dev] == pytest.approx(expect,
                                                                 rel=0.01)


class TestMixedStrategies:
    def test_mp_island_gets_transfers(self, mlp_graph, four_gpu):
        """DP everywhere except one op pinned to gpu3 -> split/concat or
        transfers must appear around the island."""
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        # pin one middle forward op
        target = [o for o in mlp_graph
                  if o.phase is OpPhase.FORWARD and o.param_bytes][1]
        st.set(target.name, make_mp_strategy("gpu3"))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        assert len(dist.instances[target.name]) == 1
        kinds = dist.counts_by_kind()
        assert kinds.get(DistOpKind.SPLIT, 0) >= 1
        assert kinds.get(DistOpKind.CONCAT, 0) >= 1

    def test_mp_op_has_no_gradient_aggregation(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        target = [o for o in mlp_graph
                  if o.phase is OpPhase.FORWARD and o.param_bytes][0]
        st.set(target.name, make_mp_strategy("gpu2"))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        # the pinned op's gradient op must have no collective
        pgrad = f"{target.name}_pgrad"
        for succ in dist.successors(dist.instances[pgrad][0]):
            assert dist.op(succ).kind is not DistOpKind.ALLREDUCE

    def test_aligned_replicas_no_transfers(self, mlp_graph, four_gpu):
        """Adjacent ops with identical allocations connect directly."""
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.PROPORTIONAL, CommMethod.ALLREDUCE))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        # forward chain is uniformly CP: no split/concat in forward part
        splits = [o for o in dist if o.kind is DistOpKind.SPLIT]
        assert not splits

    def test_pgrad_follows_forward_strategy(self, mlp_graph, four_gpu):
        """Param-grad ops canonically inherit the forward op's placement."""
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        fwd = [o for o in mlp_graph
               if o.phase is OpPhase.FORWARD and o.param_bytes][0]
        st.set(fwd.name, make_mp_strategy("gpu1"))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        pgrad_instances = dist.instances[f"{fwd.name}_pgrad"]
        assert len(pgrad_instances) == 1
        assert dist.op(pgrad_instances[0]).device == "gpu1"


class TestResources:
    def test_transfer_seizes_nics_across_servers(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.PS))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        cross = [o for o in dist if o.kind is DistOpKind.TRANSFER
                 and not four_gpu.same_server(o.src_device, o.dst_device)]
        assert cross
        for op in cross:
            resources = op.resources()
            assert any(r.startswith("nic_out:") for r in resources)
            assert any(r.startswith("nic_in:") for r in resources)

    def test_intra_server_transfer_no_nic(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.PS))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        intra = [o for o in dist if o.kind is DistOpKind.TRANSFER
                 and four_gpu.same_server(o.src_device, o.dst_device)]
        for op in intra:
            assert not any("nic" in r for r in op.resources())

    def test_allreduce_seizes_nccl(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.EVEN, CommMethod.ALLREDUCE))
        _, dist = compile_with(mlp_graph, four_gpu, st)
        for op in dist:
            if op.kind is DistOpKind.ALLREDUCE:
                assert "nccl" in op.resources()

    def test_dist_graph_is_dag(self, tiny_vgg, four_gpu, vgg_profile):
        st = uniform_strategy(tiny_vgg, four_gpu, make_dp_strategy(
            four_gpu, ReplicaAllocation.PROPORTIONAL, CommMethod.PS))
        _, dist = compile_with(tiny_vgg, four_gpu, st, vgg_profile)
        dist.validate()
