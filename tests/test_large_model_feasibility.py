"""Fast feasibility-window checks for the Table 1 large-model rows.

The expensive end-to-end verification lives in the benchmark suite; these
tests check the *memory arithmetic* that makes each row meaningful:
every DP baseline must exceed some device's budget, while a perfectly
balanced model-parallel deployment must fit within the cluster total.
"""

import pytest

from repro.cluster import cluster_8gpu
from repro.experiments.common import LARGE_MODEL_ROWS
from repro.graph.models import build_model
from repro.graph.op import OpPhase
from repro.profiling.cost_model import op_memory_bytes, op_resident_bytes


@pytest.fixture(scope="module")
def cluster():
    return cluster_8gpu()


def _memory_totals(graph):
    activations = sum(
        op_memory_bytes(op, 1.0) for op in graph
        if op.phase in (OpPhase.INPUT, OpPhase.FORWARD, OpPhase.LOSS)
    )
    resident = sum(
        op_resident_bytes(op) for op in graph
        if op.param_bytes and op.phase in (OpPhase.FORWARD, OpPhase.LOSS)
    )
    return activations, resident


@pytest.mark.parametrize("label,model,overrides", LARGE_MODEL_ROWS)
def test_dp_exceeds_weakest_device(cluster, label, model, overrides):
    """Even data parallelism must (at least) reach the 11GB cards' budget;
    the engine-level OOM check (transfer buffers included) is in the
    benchmark suite and the OOM-boundary verification tests."""
    graph = build_model(model, "paper", **overrides)
    activations, resident = _memory_totals(graph)
    per_gpu = activations / cluster.num_devices + resident
    weakest = min(d.usable_memory_bytes for d in cluster.devices)
    assert per_gpu > weakest * 0.98, label


@pytest.mark.parametrize("label,model,overrides", LARGE_MODEL_ROWS)
def test_mp_fits_cluster_total(cluster, label, model, overrides):
    """A model-parallel deployment can exist: one parameter copy plus all
    activations fit in the cluster's total usable memory (with headroom
    for transfer buffers)."""
    graph = build_model(model, "paper", **overrides)
    activations, resident = _memory_totals(graph)
    total = sum(d.usable_memory_bytes for d in cluster.devices)
    assert activations + resident < total * 0.97, label


@pytest.mark.parametrize("label,model,overrides", LARGE_MODEL_ROWS)
def test_rows_build_and_validate(label, model, overrides):
    graph = build_model(model, "paper", **overrides)
    graph.validate()
    assert len(graph) > 100
