"""Tests for the cluster/topology substrate."""

import pytest

from repro.cluster import (
    GTX_1080TI,
    NIC_50G,
    NIC_100G,
    PCIE3,
    TESLA_P100,
    TESLA_V100,
    Cluster,
    ServerSpec,
    cluster_4gpu,
    cluster_8gpu,
    cluster_12gpu,
    homogeneous_cluster,
)
from repro.errors import PlacementError


class TestPresets:
    def test_paper_testbed_has_12_gpus(self):
        c = cluster_12gpu()
        assert c.num_devices == 12
        models = [d.spec.model for d in c.devices]
        assert models.count("Tesla V100") == 4
        assert models.count("GTX 1080Ti") == 4
        assert models.count("Tesla P100") == 4

    def test_8gpu_matches_table2_caption(self):
        """G0, G1 = V100; G2-G5 = 1080Ti; G6, G7 = P100."""
        c = cluster_8gpu()
        models = [d.spec.model for d in c.devices]
        assert models[0] == models[1] == "Tesla V100"
        assert all(m == "GTX 1080Ti" for m in models[2:6])
        assert models[6] == models[7] == "Tesla P100"

    def test_4gpu_preset(self):
        c = cluster_4gpu()
        assert c.num_devices == 4

    def test_homogeneous(self):
        c = homogeneous_cluster(6, gpus_per_server=4)
        assert c.num_devices == 6
        assert len({d.spec.model for d in c.devices}) == 1


class TestTopology:
    def test_deterministic_device_ids(self):
        c = cluster_8gpu()
        assert c.device_ids == [f"gpu{i}" for i in range(8)]

    def test_unknown_device(self):
        with pytest.raises(PlacementError):
            cluster_4gpu().device("gpu99")

    def test_same_server(self):
        c = cluster_4gpu()
        assert c.same_server("gpu0", "gpu1")
        assert not c.same_server("gpu0", "gpu2")

    def test_intra_server_link_uses_nvlink_on_v100_box(self):
        c = cluster_4gpu()
        link = c.link("gpu0", "gpu1")
        assert link.intra_server
        assert link.bandwidth > 15e9  # NVLink class

    def test_inter_server_limited_by_slower_nic(self):
        c = cluster_4gpu()
        link = c.link("gpu0", "gpu2")  # V100 box (100G) -> 1080Ti box (50G)
        assert not link.intra_server
        assert link.bandwidth == pytest.approx(50e9 / 8)

    def test_loopback_link(self):
        c = cluster_4gpu()
        assert c.link("gpu0", "gpu0").transfer_time(1e9) == 0.0

    def test_links_exclude_loopback(self):
        c = cluster_4gpu()
        assert len(c.links()) == 4 * 3

    def test_transfer_time_monotone_in_size(self):
        link = cluster_4gpu().link("gpu0", "gpu2")
        assert link.transfer_time(2e6) > link.transfer_time(1e6)

    def test_empty_cluster_rejected(self):
        with pytest.raises(PlacementError):
            Cluster([])


class TestComputePower:
    def test_v100_roughly_2x_1080ti(self):
        ratio = TESLA_V100.peak_flops / GTX_1080TI.peak_flops
        assert 1.8 <= ratio <= 2.2

    def test_relative_powers_min_one(self):
        rel = cluster_8gpu().relative_powers()
        assert min(rel.values()) == 1.0

    def test_proportional_shares_sum_to_one(self):
        shares = cluster_8gpu().proportional_shares()
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_proportional_shares_subset(self):
        c = cluster_8gpu()
        shares = c.proportional_shares(["gpu0", "gpu2"])
        assert set(shares) == {"gpu0", "gpu2"}
        assert shares["gpu0"] > shares["gpu2"]  # V100 > 1080Ti

    def test_min_memory(self):
        assert cluster_8gpu().min_memory() == GTX_1080TI.memory_bytes


class TestSubcluster:
    def test_subcluster_device_count(self):
        c = cluster_12gpu()
        sub = c.subcluster([f"gpu{i}" for i in range(6)])
        assert sub.num_devices == 6

    def test_subcluster_unknown_device(self):
        with pytest.raises(PlacementError):
            cluster_4gpu().subcluster(["gpu9"])

    def test_subcluster_preserves_models(self):
        c = cluster_12gpu()
        sub = c.subcluster(["gpu0", "gpu4", "gpu5"])
        models = sorted(d.spec.model for d in sub.devices)
        assert models == ["GTX 1080Ti", "GTX 1080Ti", "Tesla V100"]
