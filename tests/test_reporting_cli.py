"""Tests for the reporting utilities and the CLI."""

import json

import pytest

from repro.cli import build_parser, main
from repro.cluster import cluster_4gpu
from repro.parallel import GraphCompiler, make_mp_strategy, single_device_strategy
from repro.profiling import exact_profile
from repro.reporting import (
    chrome_trace,
    describe_strategy,
    save_chrome_trace,
    strategy_diff,
    text_gantt,
)
from repro.simulation import ProfileCostModel, Simulator

from tests.helpers import make_mlp


@pytest.fixture(scope="module")
def traced():
    cluster = cluster_4gpu()
    graph = make_mlp(name="report_mlp")
    profile = exact_profile(graph, cluster)
    compiler = GraphCompiler(cluster, profile)
    strategy = single_device_strategy(graph, cluster)
    strategy.set(graph.op_names[2], make_mp_strategy("gpu2"))
    dist = compiler.compile(graph, strategy)
    result = Simulator(ProfileCostModel(cluster, profile)).run(
        dist, trace=True)
    return graph, cluster, strategy, dist, result


class TestReporting:
    def test_text_gantt(self, traced):
        _, _, _, dist, result = traced
        chart = text_gantt(dist, result)
        assert "gpu0" in chart
        assert "#" in chart

    def test_gantt_requires_trace(self, traced):
        _, cluster, _, dist, _ = traced
        from repro.profiling import exact_profile
        graph = make_mlp(name="report_mlp2")
        profile = exact_profile(graph, cluster)
        compiler = GraphCompiler(cluster, profile)
        d = compiler.compile(graph, single_device_strategy(graph, cluster))
        res = Simulator(ProfileCostModel(cluster, profile)).run(d)
        with pytest.raises(ValueError):
            text_gantt(d, res)

    def test_chrome_trace_events(self, traced):
        _, _, _, dist, result = traced
        events = chrome_trace(dist, result)
        slices = [e for e in events if e["ph"] == "X"]
        assert len(slices) == len(dist)
        assert all(e["dur"] >= 0 for e in slices)

    def test_chrome_trace_metadata_stable_tids(self, traced):
        _, _, _, dist, result = traced
        events = chrome_trace(dist, result)
        meta = [e for e in events if e["ph"] == "M"]
        thread_names = {e["tid"]: e["args"]["name"] for e in meta
                        if e["name"] == "thread_name" and e["pid"] == 0}
        # devices first (sorted), then links, then nccl
        names = [thread_names[t] for t in sorted(thread_names)]
        devices = [n for n in names if not n.startswith("link ")
                   and n != "nccl"]
        assert names[:len(devices)] == sorted(devices)
        assert any(e["name"] == "process_name" for e in meta)
        # slices reference the metadata tids
        tids = {e["tid"] for e in events if e["ph"] == "X"}
        assert tids <= set(thread_names)

    def test_chrome_trace_flows_and_counters(self, traced):
        _, _, _, dist, result = traced
        events = chrome_trace(dist, result)
        starts = [e for e in events if e["ph"] == "s"]
        finishes = [e for e in events if e["ph"] == "f"]
        assert starts and len(starts) == len(finishes)
        counters = [e for e in events if e["ph"] == "C"]
        assert any(e["name"].startswith("mem ") for e in counters)

    def test_save_chrome_trace(self, traced, tmp_path):
        _, _, _, dist, result = traced
        path = tmp_path / "trace.json"
        save_chrome_trace(dist, result, str(path))
        data = json.loads(path.read_text())
        assert "traceEvents" in data

    def test_strategy_diff(self, traced):
        graph, cluster, strategy, _, _ = traced
        other = single_device_strategy(graph, cluster)
        diff = strategy_diff(strategy, other)
        assert len(diff) == 1
        (name, (a, b)), = diff.items()
        assert a == "MP:gpu2" and b == "MP:gpu0"

    def test_describe_strategy(self, traced):
        _, _, strategy, _, _ = traced
        text = describe_strategy(strategy)
        assert "strategy mix" in text
        assert "MP:gpu0" in text


class TestCLI:
    def test_parser_builds(self):
        parser = build_parser()
        args = parser.parse_args(["models"])
        assert args.command == "models"

    def test_models_command(self, capsys):
        assert main(["models", "--preset", "tiny"]) == 0
        out = capsys.readouterr().out
        assert "vgg19" in out
        assert "xlnet_large" in out

    def test_clusters_command(self, capsys):
        assert main(["clusters"]) == 0
        out = capsys.readouterr().out
        assert "Tesla V100" in out
        assert "12gpu" in out

    def test_baselines_command(self, capsys):
        assert main(["baselines", "vgg19", "--preset", "tiny",
                     "--cluster", "4gpu"]) == 0
        out = capsys.readouterr().out
        assert "EV-PS" in out and "CP-AR" in out

    def test_fig3b_experiment(self, capsys):
        assert main(["experiment", "fig3b"]) == 0
        out = capsys.readouterr().out
        assert "Conv2D" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            main(["frobnicate"])


class TestCLITrace:
    def test_trace_writes_chrome_trace(self, capsys, tmp_path):
        out = str(tmp_path / "trace.json")
        metrics = str(tmp_path / "metrics.json")
        assert main(["trace", "transformer", "4gpu", "--preset", "tiny",
                     "--episodes", "2", "-o", out,
                     "--metrics-out", metrics]) == 0
        captured = capsys.readouterr().out
        assert "critical path" in captured
        data = json.loads(open(out).read())
        events = data["traceEvents"]
        phases = {e["ph"] for e in events}
        assert {"X", "M", "C", "s", "f"} <= phases
        span_names = {e["name"] for e in events
                      if e["ph"] == "X" and e["pid"] == 1}
        assert "pipeline.search" in span_names
        assert "pipeline.execute" in span_names
        assert json.loads(open(metrics).read())["metrics"]

    def test_trace_resolves_cluster_aliases(self, tmp_path):
        out = str(tmp_path / "t.json")
        assert main(["trace", "transformer", "cluster4", "--preset", "tiny",
                     "--episodes", "1", "-o", out]) == 0

    def test_trace_unknown_model_one_line_error(self, capsys):
        assert main(["trace", "nosuchmodel", "8gpu"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")
        assert "Traceback" not in err

    def test_trace_unknown_cluster_one_line_error(self, capsys):
        assert main(["trace", "resnet", "cluster99"]) == 2
        err = capsys.readouterr().err
        assert err.startswith("error:")

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro" in capsys.readouterr().out


class TestCLIPlan:
    def test_plan_command_tiny(self, capsys, tmp_path, monkeypatch):
        """Full plan path: search, report, save strategy JSON."""
        monkeypatch.setenv("REPRO_EPISODES", "4")
        save = str(tmp_path / "strategy.json")
        # patch the model registry call path via CLI args only: use the
        # smallest model at tiny preset on the 4-GPU cluster
        assert main(["plan", "transformer", "--preset", "tiny",
                     "--cluster", "4gpu", "--episodes", "5",
                     "--save", save]) == 0
        out = capsys.readouterr().out
        assert "per-iteration time" in out
        assert "strategy mix" in out
        import json
        data = json.loads(open(save).read())
        assert data["per_op"]

    def test_experiment_rejects_unknown(self):
        with pytest.raises(SystemExit):
            main(["experiment", "table99"])
