"""Request-scoped observability: journal schema, flight recorder,
SLO accounting, correlation ids, and telemetry session re-entrancy."""

import json
import threading

import pytest

from repro import telemetry
from repro.agent import AgentConfig
from repro.cluster import cluster_4gpu
from repro.config import HeteroGConfig
from repro.errors import (
    JournalSchemaError,
    ServiceOverloadedError,
    ServiceTimeoutError,
)
from repro.service import PlanRequest, PlanningService
from repro.telemetry import (
    SCHEMA_VERSION,
    FlightRecorder,
    Journal,
    JournalEvent,
    SLOTarget,
    SLOTracker,
    filter_events,
    new_request_id,
    postmortem_report,
    priority_class,
    replay_tracker,
    request_scope,
    validate_event,
)

from tests.helpers import make_mlp

FAST = AgentConfig(max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
                   strategy_dim=16, strategy_heads=2, strategy_layers=1)


def fast_config(seed: int = 0) -> HeteroGConfig:
    return HeteroGConfig(episodes=2, seed=seed, agent=FAST)


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


@pytest.fixture(scope="module")
def mlp():
    return make_mlp(name="jrnl_mlp")


def search_request(graph, cluster, *, episodes=2, seed=0, **kw) -> PlanRequest:
    return PlanRequest(graph=graph, cluster=cluster, episodes=episodes,
                       config=fast_config(seed), **kw)


# --------------------------------------------------------------------- #
class TestJournalSchema:
    def test_emit_validates_and_stamps_base_fields(self):
        journal = Journal()
        entry = journal.emit("cache_hit", "req-x")
        data = entry.to_dict()
        assert data["schema_version"] == SCHEMA_VERSION
        assert data["event"] == "cache_hit"
        assert data["request_id"] == "req-x"
        assert isinstance(data["ts"], float)

    def test_unknown_event_type_rejected(self):
        journal = Journal()
        with pytest.raises(JournalSchemaError, match="unknown journal event"):
            journal.emit("made_up_event", "req-x")

    def test_missing_required_field_rejected(self):
        journal = Journal()
        with pytest.raises(JournalSchemaError, match="missing required"):
            journal.emit("rejected", "req-x", queue_depth=3)  # no 'limit'

    def test_reader_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        good = {"schema_version": SCHEMA_VERSION, "event": "cache_hit",
                "request_id": "req-1", "ts": 1.0}
        for bad in (
                {**good, "schema_version": 99},       # future version
                {**good, "event": "nonsense"},        # unknown type
                {k: v for k, v in good.items() if k != "ts"},  # no base
        ):
            path.write_text(json.dumps(bad) + "\n")
            with pytest.raises(JournalSchemaError):
                Journal.load(str(path))
        path.write_text(json.dumps(good) + "\n")
        assert len(Journal.load(str(path))) == 1

    def test_save_load_round_trip_is_bit_identical(self, tmp_path):
        journal = Journal()
        journal.emit("request_accepted", "req-1", graph="g", label="l",
                     priority=2, queue_depth=0)
        journal.emit("timeout", "req-1", stage="queue", seconds=0.5)
        journal.emit("fault_detected", "ep-1", kind="device_lost",
                     resource="gpu1")
        path = tmp_path / "j.jsonl"
        journal.save_jsonl(str(path))
        first = path.read_text()
        reloaded = Journal.load(str(path))
        again = "".join(json.dumps(e.to_dict()) + "\n" for e in reloaded)
        assert again == first

    def test_filters(self):
        journal = Journal()
        journal.emit("request_accepted", "req-000001", graph="g", label="",
                     priority=0, queue_depth=0)
        journal.emit("completed", "req-000001", seconds=0.1)
        journal.emit("completed", "req-000002", seconds=0.2)
        assert len(journal.events(request_id="req-000001")) == 2
        assert len(journal.events(event="completed")) == 2
        assert len(journal.events(phase="admission")) == 1
        assert len(journal.events(tail=1)) == 1
        # prefix match
        assert len(filter_events(journal.events(), request_id="req-0000")) \
            == 3

    def test_capacity_bounds_memory(self):
        journal = Journal(capacity=4)
        for i in range(10):
            journal.emit("cache_hit", f"req-{i}")
        assert len(journal) == 4
        assert journal.emitted == 10
        assert journal.events()[0].request_id == "req-6"

    def test_validate_event_accepts_extra_attrs(self):
        validate_event({"schema_version": SCHEMA_VERSION,
                        "event": "cache_hit", "request_id": "r",
                        "ts": 0.0, "anything": "extra"})

    def test_streaming_sink(self, tmp_path):
        path = tmp_path / "stream.jsonl"
        journal = Journal(path=str(path))
        journal.emit("cache_hit", "req-1")
        journal.emit("cache_hit", "req-2")
        journal.close()
        assert len(Journal.load(str(path))) == 2


# --------------------------------------------------------------------- #
class TestRequestIds:
    def test_auto_assigned_and_unique(self, mlp, four_gpu):
        a = search_request(mlp, four_gpu)
        b = search_request(mlp, four_gpu)
        assert a.request_id and b.request_id
        assert a.request_id != b.request_id
        # correlation ids never split fingerprints (caching stays sound)
        assert a.fingerprint == b.fingerprint

    def test_parent_captured_from_ambient_scope(self, mlp, four_gpu):
        with request_scope("ep-000042"):
            child = search_request(mlp, four_gpu)
        orphan = search_request(mlp, four_gpu)
        assert child.parent_id == "ep-000042"
        assert orphan.parent_id == ""

    def test_explicit_ids_respected(self, mlp, four_gpu):
        req = search_request(mlp, four_gpu)
        explicit = PlanRequest(graph=mlp, cluster=four_gpu, episodes=2,
                               config=fast_config(),
                               request_id="req-custom", parent_id="ep-9")
        assert explicit.request_id == "req-custom"
        assert explicit.parent_id == "ep-9"
        assert req.request_id != "req-custom"


# --------------------------------------------------------------------- #
class TestFlightRecorder:
    def test_ring_evicts_oldest_finished_first(self):
        rec = FlightRecorder(capacity=2)
        rec.begin("req-a")
        rec.finish("req-a", "completed")
        rec.begin("req-b")          # inflight
        rec.begin("req-c")          # over capacity: evict finished req-a
        assert rec.get("req-a") is None
        assert rec.get("req-b") is not None
        assert rec.get("req-c") is not None

    def test_per_record_event_cap_counts_drops(self):
        rec = FlightRecorder(max_events=3)
        rec.begin("req-a")
        for _ in range(5):
            rec.emit("req-a", "cache_hit")
        record = rec.get("req-a")
        assert len(record.events) == 3
        assert record.dropped_events == 2

    def test_first_terminal_status_wins(self):
        rec = FlightRecorder()
        rec.begin("req-a")
        rec.finish("req-a", "timeout")
        rec.finish("req-a", "completed")  # late completion after timeout
        assert rec.get("req-a").status == "timeout"

    def test_get_by_unique_prefix(self):
        rec = FlightRecorder()
        rec.begin("req-000123")
        rec.begin("req-000456")
        assert rec.get("req-0001").request_id == "req-000123"
        assert rec.get("req-000") is None  # ambiguous

    def test_new_request_id_prefixes(self):
        assert new_request_id("ep").startswith("ep-")
        assert new_request_id() != new_request_id()


# --------------------------------------------------------------------- #
class GatedInline(PlanningService):
    """workers=0 service whose ``_serve`` blocks until released, so a
    concurrent inline submission deterministically hits admission
    control."""

    def __init__(self, **kwargs):
        super().__init__(workers=0, **kwargs)
        self.gate = threading.Event()
        self.entered = threading.Event()

    def _serve(self, request, queue_seconds):
        self.entered.set()
        assert self.gate.wait(30), "test never released the gate"
        return super()._serve(request, queue_seconds)


class TestServiceObservability:
    def test_completed_request_timeline_without_tracing(self, mlp,
                                                        four_gpu):
        """Acceptance: the flight recorder reconstructs a request's full
        timeline with the telemetry session never enabled."""
        assert telemetry.active() is None
        rec = FlightRecorder()
        with PlanningService(workers=0, recorder=rec) as service:
            result = service.plan(search_request(mlp, four_gpu))
        assert telemetry.active() is None
        record = rec.get(result.request_id)
        assert record is not None and record.status == "completed"
        names = [e.event for e in record.events]
        assert names[0] == "request_accepted"
        assert "context_cold" in names
        assert "search_started" in names
        assert "candidate_evaluated" in names
        assert "plan_built" in names
        assert names[-1] == "completed"
        assert all(e.request_id == result.request_id
                   for e in record.events)
        assert all(e.schema_version == SCHEMA_VERSION
                   for e in record.events)
        report = postmortem_report(record)
        assert result.request_id in report
        assert "queue wait" in report and "timeline:" in report

    def test_cache_hit_and_coalesced_dispositions(self, mlp, four_gpu):
        rec = FlightRecorder()
        with PlanningService(workers=0, recorder=rec) as service:
            first = service.plan(search_request(mlp, four_gpu, seed=1))
            second = service.plan(search_request(mlp, four_gpu, seed=1))
        hit = rec.get(second.request_id)
        assert hit.status == "completed"
        assert [e.event for e in hit.events] == \
            ["request_accepted", "cache_hit", "completed"]
        assert "result cache" in hit.disposition()
        assert second.from_cache and second.request_id != first.request_id

    def test_forced_timeout_leaves_complete_record(self, mlp, four_gpu,
                                                   tmp_path):
        """Satellite: a forced ServiceTimeoutError under workers=0
        leaves a full flight timeline that round-trips bit-identically
        through the JSONL schema reader."""
        rec = FlightRecorder()
        request = search_request(mlp, four_gpu, seed=2, timeout=1e-9)
        with PlanningService(workers=0, recorder=rec) as service:
            with pytest.raises(ServiceTimeoutError) as excinfo:
                service.plan(request)
        assert excinfo.value.stage == "queue"
        assert excinfo.value.request_id == request.request_id
        record = rec.get(request.request_id)
        assert record.status == "timeout"
        names = [e.event for e in record.events]
        assert names[0] == "request_accepted" and "timeout" in names
        timeout_event = next(e for e in record.events
                             if e.event == "timeout")
        assert timeout_event.attrs["stage"] == "queue"
        # bit-identical JSONL round trip, then rebuild the same record
        path = tmp_path / "timeout.jsonl"
        rec.journal.save_jsonl(str(path))
        first = path.read_text()
        loaded = Journal.load(str(path))
        again = "".join(json.dumps(e.to_dict()) + "\n" for e in loaded)
        assert again == first
        rebuilt = FlightRecorder.from_events(loaded).get(request.request_id)
        assert rebuilt.status == "timeout"
        assert [e.event for e in rebuilt.events] == names

    def test_forced_overload_leaves_complete_record(self, mlp, four_gpu,
                                                    tmp_path):
        """Satellite: a forced ServiceOverloadedError (inline admission
        control) leaves a rejected record that round-trips through the
        JSONL reader bit-identically."""
        rec = FlightRecorder()
        service = GatedInline(max_queue=1, recorder=rec)
        blocked = search_request(mlp, four_gpu, seed=3)
        rejected = search_request(mlp, four_gpu, seed=4)
        worker = threading.Thread(target=lambda: service.plan(blocked),
                                  daemon=True)
        worker.start()
        assert service.entered.wait(30)
        with pytest.raises(ServiceOverloadedError) as excinfo:
            service.submit(rejected)
        service.gate.set()
        worker.join(timeout=30)
        service.close()
        assert excinfo.value.request_id == rejected.request_id
        record = rec.get(rejected.request_id)
        assert record.status == "rejected"
        assert [e.event for e in record.events] == \
            ["request_accepted", "rejected"]
        assert record.events[-1].attrs["limit"] == 1
        path = tmp_path / "overload.jsonl"
        rec.journal.save_jsonl(str(path))
        first = path.read_text()
        loaded = Journal.load(str(path))
        again = "".join(json.dumps(e.to_dict()) + "\n" for e in loaded)
        assert again == first
        rebuilt = FlightRecorder.from_events(loaded).get(
            rejected.request_id)
        assert rebuilt.status == "rejected"

    def test_snapshot_exposes_caches_contexts_and_slo(self, mlp, four_gpu):
        rec = FlightRecorder()
        with PlanningService(workers=0, recorder=rec) as service:
            service.plan(search_request(mlp, four_gpu, seed=5))
            service.plan(search_request(mlp, four_gpu, seed=5))  # hit
            snapshot = service.snapshot()
        stats = snapshot["stats"]
        assert stats["result_hits"] == 1 and stats["result_misses"] == 1
        assert stats["contexts_warm"] == 1
        assert snapshot["contexts"] == {"warm": 1, "capacity": 16}
        cache = snapshot["result_cache"]
        assert cache["hits"] == 1 and cache["size"] == 1
        assert snapshot["queue"]["capacity"] == 64
        assert snapshot["inflight"] == []
        slo = snapshot["slo"]["batch"]
        assert slo["requests"] == 2 and slo["breaches"] == 0

    def test_spans_carry_request_id_when_traced(self, mlp, four_gpu):
        rec = FlightRecorder()
        with telemetry.session() as tel:
            with PlanningService(workers=0, recorder=rec) as service:
                result = service.plan(search_request(mlp, four_gpu, seed=6))
        tagged = [s for s in tel.tracer.to_events()
                  if s["attrs"].get("request_id") == result.request_id]
        names = {s["name"] for s in tagged}
        assert "pipeline.search" in names
        assert "plan.build" in names


# --------------------------------------------------------------------- #
class TestSLO:
    def test_priority_classes(self):
        assert priority_class(0) == "batch"
        assert priority_class(1) == "interactive"
        assert priority_class(9) == "interactive"
        assert priority_class(10) == "critical"

    def test_error_budget_accounting(self):
        tracker = SLOTracker({"batch": SLOTarget(objective_seconds=1.0,
                                                 target=0.9)})
        for _ in range(8):
            tracker.observe("batch", 0.5)
        tracker.observe("batch", 5.0)           # too slow
        tracker.observe("batch", 0.1, ok=False)  # failed
        state = tracker.snapshot()["batch"]
        assert state["requests"] == 10
        assert state["good"] == 8 and state["breaches"] == 2
        assert state["compliance"] == pytest.approx(0.8)
        assert state["error_budget"] == pytest.approx(1.0)
        assert state["budget_burn"] == pytest.approx(2.0)  # SLO blown
        assert state["worst_latency"] == 5.0

    def test_rejects_bad_targets(self):
        from repro.errors import ReproError
        with pytest.raises(ReproError):
            SLOTarget(objective_seconds=-1.0)
        with pytest.raises(ReproError):
            SLOTarget(objective_seconds=1.0, target=1.5)

    def test_compliance_from_histogram(self):
        registry = telemetry.MetricsRegistry()
        hist = registry.histogram("h", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 5.0, 50.0):
            hist.observe(v)
        within = SLOTracker.compliance_from_histogram(hist, 1.0)
        assert within == pytest.approx(0.5)

    def test_replay_from_journal_events(self):
        events = [
            JournalEvent("completed", "r1", 1.0,
                         {"seconds": 0.5, "slo_class": "batch"}),
            JournalEvent("timeout", "r2", 2.0,
                         {"stage": "queue", "seconds": 9.0,
                          "slo_class": "batch"}),
            JournalEvent("cache_hit", "r3", 3.0, {}),  # ignored
        ]
        state = replay_tracker(events).snapshot()["batch"]
        assert state["requests"] == 2
        assert state["good"] == 1 and state["breaches"] == 1


# --------------------------------------------------------------------- #
class TestResilienceEpisodeTrace:
    def test_fault_detect_replan_resume_is_one_linked_trace(self, mlp,
                                                            four_gpu):
        """Tentpole acceptance: a fault -> detect -> replan -> resume
        episode is one correlated trace — the episode record holds the
        detection and replan events, and the replan's service request is
        linked back through parent_id."""
        from repro.baselines import dp_strategy
        from repro.profiling import Profiler
        from repro.resilience import (
            FaultInjector,
            FaultSchedule,
            Replanner,
            ResilientTrainer,
        )
        from repro.runtime import ExecutionEngine
        from repro.runtime.deployment import build_deployment

        rec = FlightRecorder()
        config = AgentConfig(seed=3, max_groups=8, gat_hidden=16,
                             gat_layers=2, gat_heads=2, strategy_dim=16,
                             strategy_heads=2, strategy_layers=1)
        profile = Profiler(seed=0).profile(mlp, four_gpu)
        deployment = build_deployment(
            mlp, four_gpu, dp_strategy("CP-AR", mlp, four_gpu),
            profile=profile)
        injector = FaultInjector(four_gpu,
                                 FaultSchedule.parse("crash:gpu1@2"))
        engine = ExecutionEngine(four_gpu, seed=9, fault_injector=injector)
        replanner = Replanner(
            mlp, four_gpu, agent_config=config, episodes=2, seed=3,
            service=PlanningService(workers=0, name="replanner",
                                    recorder=rec))
        trainer = ResilientTrainer(deployment, injector, engine=engine,
                                   replanner=replanner, recorder=rec)
        report = trainer.run(6)
        assert not report.stalled

        episode = rec.get(trainer.episode_id)
        assert episode is not None and episode.status == "completed"
        names = [e.event for e in episode.events]
        assert names[0] == "episode_started"
        for expected in ("fault_detected", "replan_started",
                         "replan_completed", "resumed"):
            assert expected in names
        fault = next(e for e in episode.events
                     if e.event == "fault_detected")
        assert fault.attrs["kind"] == "device_lost"
        assert fault.attrs["resource"] == "gpu1"

        # the replan's own service request links back to the episode
        replans = [r for r in rec.records()
                   if r.parent_id == trainer.episode_id]
        assert len(replans) >= 1
        assert all(r.label == "replan" for r in replans)
        replan_done = next(e for e in episode.events
                           if e.event == "replan_completed")
        assert replan_done.attrs["request_id_of_replan"] \
            in {r.request_id for r in replans}
        # postmortem of the episode reads end-to-end
        text = postmortem_report(episode)
        assert "fault_detected" in text and "resumed" in text


# --------------------------------------------------------------------- #
class TestSessionReentrancy:
    """Satellite: nested/re-entrant telemetry sessions compose."""

    def test_disable_restores_prior_session(self):
        outer = telemetry.enable()
        inner = telemetry.enable()
        assert telemetry.active() is inner
        telemetry.disable()
        assert telemetry.active() is outer
        telemetry.disable()
        assert telemetry.active() is None

    def test_disable_without_session_is_noop(self):
        assert telemetry.active() is None
        telemetry.disable()
        assert telemetry.active() is None

    def test_nested_session_restores_outer(self):
        with telemetry.session() as outer:
            with telemetry.session() as inner:
                assert telemetry.active() is inner
                with telemetry.span("inner.work"):
                    pass
            assert telemetry.active() is outer
            with telemetry.span("outer.work"):
                pass
        assert telemetry.active() is None
        assert [s["name"] for s in inner.tracer.to_events()] \
            == ["inner.work"]
        assert [s["name"] for s in outer.tracer.to_events()] \
            == ["outer.work"]

    def test_session_unwinds_stray_enables(self):
        with telemetry.session() as tel:
            telemetry.enable()   # opened inside, never disabled
            telemetry.enable()
            assert telemetry.active() is not tel
        assert telemetry.active() is None
