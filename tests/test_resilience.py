"""Resilience subsystem: fault injection, detection, elastic replanning."""

import math

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro import telemetry
from repro.agent import AgentConfig
from repro.baselines import dp_strategy
from repro.cluster import cluster_4gpu
from repro.errors import DeviceLostError, PlacementError, ReproError
from repro.parallel.distgraph import DistGraph, DistOpKind
from repro.profiling import Profiler
from repro.resilience import (
    FailureDetector,
    FaultInjector,
    FaultKind,
    FaultSchedule,
    Replanner,
    ResilientTrainer,
)
from repro.runtime import ExecutionEngine
from repro.runtime.deployment import build_deployment
from repro.simulation.metrics import SimulationResult

from tests.helpers import make_mlp

TINY_AGENT = dict(max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
                  strategy_dim=16, strategy_heads=2, strategy_layers=1)


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


@pytest.fixture(scope="module")
def mlp():
    return make_mlp(name="resil_mlp")


@pytest.fixture(scope="module")
def deployment(four_gpu, mlp):
    profile = Profiler(seed=0).profile(mlp, four_gpu)
    strategy = dp_strategy("CP-AR", mlp, four_gpu)
    return build_deployment(mlp, four_gpu, strategy, profile=profile)


def touched_devices(dist: DistGraph):
    """Every device id an op of ``dist`` computes on or communicates with."""
    devices = set()
    for name in dist.op_names:
        op = dist.op(name)
        if op.is_compute:
            devices.add(op.device)
        elif op.kind is DistOpKind.TRANSFER:
            devices.update((op.src_device, op.dst_device))
        else:
            devices.update(op.devices)
    return devices


# --------------------------------------------------------------------- #
class TestSchedule:
    def test_parse_roundtrip(self):
        sched = FaultSchedule.parse(
            "crash:gpu3@5, degrade:server1@8x0.5, straggler:gpu2@3x1.7")
        assert len(sched) == 3
        # iteration-sorted regardless of spec order
        assert [e.iteration for e in sched] == [3, 5, 8]
        kinds = {e.kind for e in sched}
        assert kinds == {FaultKind.DEVICE_CRASH, FaultKind.LINK_DEGRADE,
                         FaultKind.STRAGGLER}

    @pytest.mark.parametrize("spec", [
        "boom:gpu0@1",            # unknown kind
        "crash:gpu0",             # missing iteration
        "degrade:server0@2x1.5",  # degrade factor must be < 1
        "straggler:gpu1@2x0.5",   # straggler factor must be > 1
        "crash:gpu0@-1",          # negative iteration
    ])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(ReproError):
            FaultSchedule.parse(spec)

    def test_random_is_deterministic_and_leaves_survivors(self, four_gpu):
        a = FaultSchedule.random(four_gpu, seed=7, events=6)
        b = FaultSchedule.random(four_gpu, seed=7, events=6)
        assert [e.label for e in a] == [e.label for e in b]
        crashes = [e for e in a if e.kind is FaultKind.DEVICE_CRASH]
        assert len(crashes) <= four_gpu.num_devices - 1


# --------------------------------------------------------------------- #
class TestClusterDerivation:
    def test_without_devices_preserves_ids(self, four_gpu):
        degraded = four_gpu.without_devices(["gpu1"])
        assert degraded.device_ids == ["gpu0", "gpu2", "gpu3"]
        # surviving devices keep their identity (specs, server, id)
        for dev in degraded.devices:
            assert dev is four_gpu.device(dev.device_id)
        assert all("gpu1" not in (lk.src, lk.dst)
                   for lk in degraded.links())

    def test_without_devices_validates(self, four_gpu):
        with pytest.raises(ReproError):
            four_gpu.without_devices(["gpu99"])
        with pytest.raises(PlacementError):
            four_gpu.without_devices(four_gpu.device_ids)

    def test_with_scaled_links(self, four_gpu):
        scaled = four_gpu.with_scaled_links(0.5, involving="server1")
        for link in four_gpu.links():
            before = link.bandwidth
            after = scaled.link(link.src, link.dst).bandwidth
            crosses = not link.intra_server and "server1" in (
                four_gpu.device(link.src).server,
                four_gpu.device(link.dst).server)
            assert after == pytest.approx(
                before * 0.5 if crosses else before)

    def test_with_scaled_compute(self, four_gpu):
        slowed = four_gpu.with_scaled_compute({"gpu0": 0.5})
        assert slowed.device("gpu0").spec.peak_flops == pytest.approx(
            four_gpu.device("gpu0").spec.peak_flops * 0.5)
        assert slowed.device("gpu1").spec.peak_flops == pytest.approx(
            four_gpu.device("gpu1").spec.peak_flops)
        # memory capacity is untouched: a slow GPU still holds its tensors
        assert slowed.device("gpu0").memory_bytes == \
            four_gpu.device("gpu0").memory_bytes


# --------------------------------------------------------------------- #
class TestInjector:
    def test_unknown_target_rejected(self, four_gpu):
        with pytest.raises(ReproError):
            FaultInjector(four_gpu, FaultSchedule.parse("crash:gpu9@1"))
        with pytest.raises(ReproError):
            # crash needs a device, not a server
            FaultInjector(four_gpu, FaultSchedule.parse("crash:server0@1"))

    def test_crash_makes_engine_raise(self, four_gpu, deployment):
        injector = FaultInjector(
            four_gpu, FaultSchedule.parse("crash:gpu2@1"))
        engine = ExecutionEngine(four_gpu, seed=5, fault_injector=injector)
        # healthy before the fault fires
        engine.run_iteration(deployment.dist, deployment.schedule,
                             deployment.resident_bytes)
        injector.advance(1)
        with pytest.raises(DeviceLostError) as exc:
            engine.run_iteration(deployment.dist, deployment.schedule,
                                 deployment.resident_bytes)
        assert exc.value.device == "gpu2"

    def test_straggler_slows_iterations(self, four_gpu, deployment):
        def mean_time(schedule):
            injector = FaultInjector(four_gpu, schedule)
            engine = ExecutionEngine(four_gpu, seed=5,
                                     fault_injector=injector)
            injector.advance(0)
            stats = engine.measure(deployment.dist, deployment.schedule,
                                   deployment.resident_bytes,
                                   iterations=3, warmup=0)
            return stats.mean

        healthy = mean_time(FaultSchedule.empty())
        # gpu3 (a 1080Ti) is the compute bottleneck of this deployment
        slowed = mean_time(FaultSchedule.parse("straggler:gpu3@0x5.0"))
        assert slowed > healthy * 1.2

    def test_degrade_slows_cross_server_traffic(self, four_gpu, deployment):
        def mean_time(schedule):
            injector = FaultInjector(four_gpu, schedule)
            engine = ExecutionEngine(four_gpu, seed=5,
                                     fault_injector=injector)
            injector.advance(0)
            stats = engine.measure(deployment.dist, deployment.schedule,
                                   deployment.resident_bytes,
                                   iterations=3, warmup=0)
            return stats.mean

        healthy = mean_time(FaultSchedule.empty())
        degraded = mean_time(FaultSchedule.parse("degrade:server1@0x0.2"))
        assert degraded > healthy

    def test_degraded_cluster_reflects_all_faults(self, four_gpu):
        injector = FaultInjector(four_gpu, FaultSchedule.parse(
            "crash:gpu3@1, straggler:gpu0@1x2.0, degrade:server0@1x0.5"))
        injector.advance(1)
        degraded = injector.degraded_cluster()
        assert degraded.device_ids == ["gpu0", "gpu1", "gpu2"]
        assert degraded.device("gpu0").spec.peak_flops == pytest.approx(
            four_gpu.device("gpu0").spec.peak_flops / 2.0)


# --------------------------------------------------------------------- #
class TestEmptySchedulePaired:
    def test_bit_identical_to_uninstrumented_run(self, four_gpu,
                                                 deployment):
        """Empty fault schedule -> the whole measured run is
        bit-identical to one without any injector at all."""

        def run(with_injector: bool):
            injector = FaultInjector(four_gpu, FaultSchedule.empty()) \
                if with_injector else None
            engine = ExecutionEngine(four_gpu, seed=33,
                                     fault_injector=injector)
            if injector is not None:
                for i in range(4):
                    assert injector.advance(i) == []
            stats = engine.measure(deployment.dist, deployment.schedule,
                                   deployment.resident_bytes, iterations=3)
            last = stats.last_result
            return stats.times, dict(last.peak_memory), last.makespan

        assert run(False) == run(True)


# --------------------------------------------------------------------- #
class TestDetector:
    def test_classifies_hard_failures(self):
        detector = FailureDetector()
        event = detector.observe_error(4, DeviceLostError("gpu2", "op7"))
        assert (event.kind, event.resource, event.is_hard) == \
            ("device_lost", "gpu2", True)
        with pytest.raises(ReproError):
            detector.observe_error(4, RuntimeError("unrelated"))

    def test_flags_straggler_blowup_once(self):
        detector = FailureDetector(blowup_threshold=1.4, warmup=2)

        def result(gpu0_busy):
            return SimulationResult(
                makespan=gpu0_busy,
                device_busy={"gpu0": gpu0_busy, "gpu1": 1.0},
                link_busy={"link:gpu0->gpu1": 0.2},
            )

        assert detector.observe(0, result(1.0)) == []   # warmup
        assert detector.observe(1, result(1.02)) == []  # warmup
        assert detector.observe(2, result(1.01)) == []  # healthy
        events = detector.observe(3, result(2.0))       # blow-up
        assert [(e.kind, e.resource) for e in events] == \
            [("straggler", "gpu0")]
        assert events[0].severity > 1.4
        # flagged once, not re-reported while still slow
        assert detector.observe(4, result(2.1)) == []
        detector.reset()
        assert detector.observe(5, result(2.1)) == []   # re-warming

    def test_rejects_bad_thresholds(self):
        with pytest.raises(ReproError):
            FailureDetector(blowup_threshold=0.9)
        with pytest.raises(ReproError):
            FailureDetector(ema=0.0)


# --------------------------------------------------------------------- #
class TestCrashRecovery:
    def test_detect_replan_resume(self, four_gpu, mlp):
        """A crashed GPU is detected, replanned around on the warm plan
        layer, and training resumes OOM-free on the survivors."""
        config = AgentConfig(seed=3, **TINY_AGENT)
        profile = Profiler(seed=0).profile(mlp, four_gpu)
        strategy = dp_strategy("CP-AR", mlp, four_gpu)
        deployment = build_deployment(mlp, four_gpu, strategy,
                                     profile=profile)
        injector = FaultInjector(four_gpu,
                                 FaultSchedule.parse("crash:gpu1@2"))
        engine = ExecutionEngine(four_gpu, seed=9, fault_injector=injector)
        replanner = Replanner(mlp, four_gpu, agent_config=config,
                              episodes=2, seed=3)
        with telemetry.session() as session:
            trainer = ResilientTrainer(deployment, injector, engine=engine,
                                       replanner=replanner)
            report = trainer.run(6)
            hits = session.registry.get("plan_cache_hits_total",
                                        labels={"kind": "plan"})
            mttr_metric = session.registry.get("resilience_mttr_seconds")

        assert not report.stalled and report.completed_steps == 6
        assert any(d.kind == "device_lost" and d.resource == "gpu1"
                   for d in report.detections)
        replans = [r for r in report.recoveries if r.action == "replan"]
        assert len(replans) == 1
        assert replans[0].plan_cache_hits > 0     # warm plan layer reused
        assert replans[0].devices_after == 3
        assert report.mttr > 0 and report.lost_work > 0
        assert hits is not None and hits.value > 0
        assert mttr_metric is not None \
            and mttr_metric.value == pytest.approx(report.mttr)
        # the new deployment never touches the dead device
        assert "gpu1" not in touched_devices(trainer.deployment.dist)

    def test_ride_policy_stalls_on_crash(self, four_gpu, deployment):
        injector = FaultInjector(four_gpu,
                                 FaultSchedule.parse("crash:gpu1@2"))
        engine = ExecutionEngine(four_gpu, seed=9, fault_injector=injector)
        trainer = ResilientTrainer(deployment, injector, engine=engine,
                                   policy="ride")
        report = trainer.run(6)
        assert report.stalled and report.completed_steps == 2
        assert math.isinf(report.total_seconds)
        assert math.isnan(report.mttr)

    def test_ride_policy_survives_straggler(self, four_gpu, deployment):
        injector = FaultInjector(
            four_gpu, FaultSchedule.parse("straggler:gpu0@2x3.0"))
        engine = ExecutionEngine(four_gpu, seed=9, fault_injector=injector)
        trainer = ResilientTrainer(deployment, injector, engine=engine,
                                   policy="ride")
        report = trainer.run(8)
        assert not report.stalled and report.completed_steps == 8
        assert any(d.kind == "straggler" for d in report.detections)
        assert all(r.action == "ride" for r in report.recoveries)


# --------------------------------------------------------------------- #
class TestReplanProperty:
    """Replanning never places work on failed devices or removed links."""

    @given(crashed=st.sets(
        st.sampled_from(["gpu0", "gpu1", "gpu2", "gpu3"]),
        min_size=1, max_size=2))
    @settings(max_examples=6, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_replan_avoids_failed_resources(self, replan_env, crashed):
        cluster, replanner = replan_env
        degraded = cluster.without_devices(crashed)
        recovery = replanner.replan(degraded)
        assert recovery.feasible
        dist = recovery.deployment.dist
        used = touched_devices(dist)
        assert used.isdisjoint(crashed)
        # every transfer routes over a link that still exists
        for name in dist.op_names:
            op = dist.op(name)
            if op.kind is DistOpKind.TRANSFER:
                assert degraded.link(op.src_device, op.dst_device) \
                    is not None

    @pytest.fixture(scope="class")
    def replan_env(self, four_gpu, mlp):
        config = AgentConfig(seed=5, **TINY_AGENT)
        return four_gpu, Replanner(mlp, four_gpu, agent_config=config,
                                   episodes=2, seed=5)
