"""Property-based tests for grouping and the seed generators."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cluster import cluster_4gpu, cluster_8gpu
from repro.graph.grouping import group_operations
from repro.agent.seeds import (
    group_memory_bytes,
    ladder_from_targets,
    memory_ladder_strategy,
    rebalance_weights,
    seed_action_vectors,
)
from repro.parallel.strategy import ParallelKind

from tests.helpers import make_mlp

CLUSTER = cluster_4gpu()


@settings(max_examples=20, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(1, 5), st.integers(2, 30))
def test_grouping_is_total_partition(layers, max_groups):
    graph = make_mlp(layers=layers, name=f"gp_{layers}_{max_groups}")
    grouping = group_operations(graph, {n: 1.0 for n in graph.op_names},
                                max_groups)
    # every op in exactly one group; groups indices dense
    assert set(grouping.group_of) == set(graph.op_names)
    used = set(grouping.group_of.values())
    assert used <= set(range(grouping.num_groups))
    # anchors map to their own groups
    for g, anchor in enumerate(grouping.anchors):
        assert grouping.group_of[anchor] == g


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.integers(2, 6), st.integers(4, 24))
def test_seed_vectors_always_valid(layers, max_groups):
    graph = make_mlp(layers=layers, name=f"sv_{layers}_{max_groups}")
    grouping = group_operations(graph, {n: 1.0 for n in graph.op_names},
                                max_groups)
    for vec in seed_action_vectors(graph, CLUSTER, grouping):
        assert vec.shape == (grouping.num_groups,)
        assert (vec >= 0).all()
        assert (vec < CLUSTER.num_devices + 4).all()


@settings(max_examples=15, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
@given(st.lists(st.floats(0.1, 10.0), min_size=4, max_size=4))
def test_ladder_respects_target_monotonicity(weights):
    """Whatever the capacity weights, the ladder is a monotone staircase
    over the anchors' topological order."""
    graph = make_mlp(layers=5, name="ladder_prop")
    grouping = group_operations(graph, {n: 1.0 for n in graph.op_names}, 16)
    ladder = ladder_from_targets(graph, CLUSTER, grouping,
                                 np.asarray(weights))
    from repro.agent.seeds import _anchor_topo_positions
    order = np.argsort(_anchor_topo_positions(graph, grouping))
    stages = [ladder[g] for g in order]
    assert all(a <= b for a, b in zip(stages, stages[1:]))
    assert (ladder >= 0).all() and (ladder < CLUSTER.num_devices).all()


def test_group_memory_accounts_forward_only():
    graph = make_mlp(layers=3, name="gm_mlp")
    grouping = group_operations(graph, {n: 1.0 for n in graph.op_names}, 6)
    mem = group_memory_bytes(graph, grouping)
    assert mem.sum() > 0
    assert (mem >= 0).all()


class TestMemoryLadderStrategy:
    def test_all_mp_and_backward_colocated(self):
        graph = make_mlp(layers=5, name="ml_mlp")
        strategy = memory_ladder_strategy(graph, cluster_8gpu())
        for name in graph.op_names:
            st_ = strategy.get(name)
            assert st_.kind is ParallelKind.MP
            op = graph.op(name)
            if op.forward_ref is not None:
                assert st_.device == strategy.get(op.forward_ref).device

    def test_weights_shift_boundaries(self):
        graph = make_mlp(layers=8, width=128, name="ml_mlp2")
        cluster = cluster_4gpu()
        even = memory_ladder_strategy(
            graph, cluster, np.asarray([1.0, 1.0, 1.0, 1.0]))
        skewed = memory_ladder_strategy(
            graph, cluster, np.asarray([10.0, 1.0, 1.0, 1.0]))
        even_on_0 = sum(1 for n in graph.op_names
                        if even.get(n).device == "gpu0")
        skewed_on_0 = sum(1 for n in graph.op_names
                          if skewed.get(n).device == "gpu0")
        assert skewed_on_0 > even_on_0

    def test_rebalance_weights_shift_away_from_overload(self):
        cluster = cluster_4gpu()
        peaks = {"gpu0": 20e9, "gpu1": 1e9, "gpu2": 5e9, "gpu3": 5e9}
        weights = rebalance_weights(cluster, peaks)
        # overloaded gpu0 loses share relative to underused gpu1
        cap0 = cluster.device("gpu0").usable_memory_bytes
        cap1 = cluster.device("gpu1").usable_memory_bytes
        assert weights[0] / cap0 < weights[1] / cap1

    def test_rebalance_handles_unused_device(self):
        cluster = cluster_4gpu()
        weights = rebalance_weights(cluster, {"gpu0": 5e9})
        assert len(weights) == 4
        assert (np.asarray(weights) > 0).all()
