"""Tests for PS / AllReduce aggregation structures and cost formulas."""

import pytest

from repro.cluster import cluster_4gpu, cluster_8gpu, homogeneous_cluster
from repro.errors import CompileError
from repro.parallel.aggregation import (
    choose_allreduce,
    choose_ps_device,
    cluster_link_lookup,
    hierarchical_allreduce_time,
    ring_allreduce_time,
)


@pytest.fixture(scope="module")
def lookup4():
    return cluster_link_lookup(cluster_4gpu())


class TestRingAllReduce:
    def test_single_device_free(self, lookup4):
        assert ring_allreduce_time(["gpu0"], 1e8, lookup4) == 0.0

    def test_scales_with_bytes(self, lookup4):
        devices = ["gpu0", "gpu1", "gpu2"]
        t1 = ring_allreduce_time(devices, 1e7, lookup4)
        t2 = ring_allreduce_time(devices, 1e8, lookup4)
        assert t2 > 5 * t1

    def test_bottlenecked_by_slowest_link(self):
        het = cluster_4gpu()
        lk = cluster_link_lookup(het)
        # ring within the NVLink server vs ring across servers
        intra = ring_allreduce_time(["gpu0", "gpu1"], 1e8, lk)
        cross = ring_allreduce_time(["gpu0", "gpu2"], 1e8, lk)
        assert cross > intra

    def test_2n_minus_1_over_n_scaling(self, lookup4):
        """Per-device traffic is 2(n-1)/n * bytes: doubling n with the same
        min-bandwidth ring shouldn't double the time."""
        t2 = ring_allreduce_time(["gpu0", "gpu2"], 1e8, lookup4)
        t4 = ring_allreduce_time(["gpu0", "gpu1", "gpu2", "gpu3"], 1e8, lookup4)
        assert t4 < 2 * t2


class TestHierarchicalAllReduce:
    @staticmethod
    def _nvlink_slow_nic_cluster():
        """Two servers, 4 NVLink GPUs each, slow 25GbE NICs: the regime
        where hierarchical AllReduce clearly beats the flat ring (the
        leader ring moves ~B over the slow path instead of ~2B)."""
        from repro.cluster import GBPS, NVLINK, TESLA_V100, Cluster, LinkSpec, ServerSpec
        nic = LinkSpec("25GbE", 25 * GBPS, 15e-6)
        return Cluster([
            ServerSpec("s0", TESLA_V100, 4, nic, intra_link=NVLINK),
            ServerSpec("s1", TESLA_V100, 4, nic, intra_link=NVLINK),
        ])

    def test_beats_flat_ring_with_fast_intra_links(self):
        c = self._nvlink_slow_nic_cluster()
        lk = cluster_link_lookup(c)
        flat = ring_allreduce_time(c.device_ids, 5e8, lk)
        hier = hierarchical_allreduce_time(c.device_ids, 5e8, lk, c)
        assert hier < flat

    def test_choose_allreduce_picks_better(self):
        """On the paper testbed (2 GPUs/server over PCIe), the flat ring's
        larger chunking amortization wins; with NVLink servers behind slow
        NICs the hierarchical structure wins.  choose_allreduce must pick
        the min either way."""
        for c in (cluster_8gpu(), self._nvlink_slow_nic_cluster()):
            lk = cluster_link_lookup(c)
            hierarchical, t = choose_allreduce(c.device_ids, 5e8, lk, c)
            flat = ring_allreduce_time(c.device_ids, 5e8, lk)
            hier = hierarchical_allreduce_time(c.device_ids, 5e8, lk, c)
            assert t == pytest.approx(min(flat, hier))
            assert hierarchical == (hier < flat)

    def test_choose_flat_for_single_server(self):
        c = homogeneous_cluster(4, gpus_per_server=4)
        lk = cluster_link_lookup(c)
        hierarchical, _ = choose_allreduce(c.device_ids, 1e8, lk, c)
        assert not hierarchical

    def test_choose_requires_two_devices(self, lookup4):
        c = cluster_4gpu()
        with pytest.raises(CompileError):
            choose_allreduce(["gpu0"], 1e8, lookup4, c)


class TestPSDeviceChoice:
    def test_prefers_best_connected(self):
        c = cluster_4gpu()
        lk = cluster_link_lookup(c)
        # gpu0/gpu1 sit behind the 100GbE NIC; either should win
        ps = choose_ps_device(c.device_ids, 1e8, lk)
        assert ps in ("gpu0", "gpu1")

    def test_single_candidate(self):
        c = cluster_4gpu()
        lk = cluster_link_lookup(c)
        assert choose_ps_device(["gpu3"], 1e8, lk) == "gpu3"

    def test_empty_rejected(self, lookup4):
        with pytest.raises(CompileError):
            choose_ps_device([], 1e8, lookup4)

    def test_deterministic(self):
        c = cluster_8gpu()
        lk = cluster_link_lookup(c)
        assert (choose_ps_device(c.device_ids, 1e8, lk)
                == choose_ps_device(c.device_ids, 1e8, lk))
