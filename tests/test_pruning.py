"""Branch-and-bound candidate pruning: admissibility, winner identity,
best-so-far semantics, cache soundness and wire-protocol versioning.

The load-bearing guarantee under test: a pruned search returns the SAME
winning strategy with a byte-equal winning makespan as the unpruned
search — pruning only ever removes work, never changes results.
"""

import math

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.agent.policy import actions_to_strategy, num_actions
from repro.cluster import cluster_4gpu
from repro.errors import FleetProtocolError
from repro.graph import GraphBuilder, build_training_graph
from repro.graph.grouping import group_operations
from repro.graph.models import build_model, model_names
from repro.parallel import GraphCompiler
from repro.parallel.strategy import (
    CommMethod,
    ReplicaAllocation,
    Strategy,
    make_dp_strategy,
    make_mp_strategy,
)
from repro.plan import BatchEvaluator, BestSoFar, PlanBuilder
from repro.profiling import Profiler, exact_profile
from repro.scheduling import ListScheduler
from repro.service.messages import (
    WIRE_VERSION,
    EvalRequestMessage,
    message_from_wire,
)
from repro.simulation import ProfileCostModel, Simulator
from repro.simulation.costs import TruthCostModel
from repro.simulation.kernel import kernel_lower_bound, lower

CLUSTER = cluster_4gpu()


def random_graph(layers: int, width: int, batch: int, branches: bool):
    b = GraphBuilder(f"prune_{layers}_{width}_{batch}_{branches}", batch)
    x = b.input((8,))
    for i in range(layers):
        x = b.dense(x, width, layer=f"fc{i}")
        if branches and i % 2 == 0:
            left = b.activation(x, layer=f"l{i}")
            right = b.activation(x, kind="Gelu", layer=f"r{i}")
            x = b.add_n([left, right], layer=f"merge{i}")
        else:
            x = b.activation(x, layer=f"fc{i}")
    b.softmax_loss(x, 10)
    return build_training_graph(b)


def candidate_strategies(graph, rng: np.random.Generator, n: int,
                         groups: int = 6):
    grouping = group_operations(graph, {op: 1.0 for op in graph.op_names},
                                groups)
    return [
        actions_to_strategy(
            graph, CLUSTER, grouping,
            rng.integers(0, num_actions(CLUSTER), grouping.num_groups))
        for _ in range(n)
    ]


def serial_winner(builder: PlanBuilder, candidates, *, best=None,
                  prune=True):
    """argmin over a serial sweep: first index wins ties, like the
    strict-< update every search consumer uses."""
    outcomes = [builder.evaluate(s, best=best, prune=prune)
                for s in candidates]
    times = [o.time if o.feasible else float("inf") for o in outcomes]
    idx = min(range(len(times)), key=times.__getitem__)
    return idx, times[idx], outcomes


# --------------------------------------------------------------------- #
class TestBestSoFar:
    def test_starts_unbounded(self):
        best = BestSoFar()
        assert best.threshold() == float("inf")
        assert best.best == float("inf")

    def test_threshold_is_min_observed(self):
        best = BestSoFar()
        best.observe(5.0)
        best.observe(3.0)
        best.observe(7.0)
        assert best.threshold() == 3.0
        assert best.best == 3.0

    def test_hard_limit_caps_threshold(self):
        best = BestSoFar(limit=2.0)
        assert best.threshold() == 2.0
        best.observe(5.0)
        assert best.threshold() == 2.0
        best.observe(1.0)
        assert best.threshold() == 1.0

    def test_keep_k_waits_for_k_observations(self):
        best = BestSoFar(keep=3)
        best.observe(1.0)
        best.observe(2.0)
        # fewer than keep observations: pruning must not start
        assert best.threshold() == float("inf")
        best.observe(3.0)
        assert best.threshold() == 3.0  # kth smallest
        best.observe(0.5)
        assert best.threshold() == 2.0  # {0.5, 1.0, 2.0}

    def test_floor_requires_both_trackers(self):
        glob = BestSoFar()
        glob.observe(1.0)
        round_ = BestSoFar(keep=2, floor=glob)
        # round tracker not yet populated: threshold stays inf even
        # though the floor is tight (a candidate could still be elite)
        assert round_.threshold() == float("inf")
        round_.observe(4.0)
        round_.observe(6.0)
        # prune only above BOTH the round elite cut and the global best
        assert round_.threshold() == max(6.0, 1.0)

    def test_observe_forwards_to_floor(self):
        glob = BestSoFar()
        round_ = BestSoFar(floor=glob)
        round_.observe(2.5)
        assert glob.best == 2.5

    def test_ignores_nan_and_inf(self):
        best = BestSoFar()
        best.observe(float("inf"))
        best.observe(float("nan"))
        assert best.threshold() == float("inf")
        best.observe(1.0)
        assert best.threshold() == 1.0


# --------------------------------------------------------------------- #
class TestLowerBoundAdmissibility:
    @pytest.mark.parametrize("model", model_names())
    def test_bound_never_exceeds_makespan(self, model):
        """On every seed model family: bound <= simulated makespan."""
        graph = build_model(model, "tiny")
        profile = Profiler(seed=0).profile(graph, CLUSTER)
        builder = PlanBuilder(graph, CLUSTER, profile)
        # per-op strategies via the benchmark's random-pool recipe
        import random
        rng = random.Random(0)
        options = [make_mp_strategy(d) for d in CLUSTER.device_ids]
        options.append(make_dp_strategy(CLUSTER, ReplicaAllocation.EVEN,
                                        CommMethod.ALLREDUCE))
        pool = [
            Strategy(graph, CLUSTER,
                     {name: rng.choice(options)
                      for name in graph.op_names})
            for _ in range(2)
        ]
        for strategy in pool:
            outcome = builder.evaluate(strategy)
            if not outcome.feasible:
                continue
            plan = builder.build(strategy)
            bound = kernel_lower_bound(plan.kernel, builder.cost)
            assert bound is not None
            assert bound <= outcome.time + 1e-9

    def test_bound_none_for_stochastic_cost(self):
        graph = build_model("vgg19", "tiny")
        profile = exact_profile(graph, CLUSTER)
        builder = PlanBuilder(graph, CLUSTER, profile)
        plan = builder.build(candidate_strategies(
            graph, np.random.default_rng(0), 1)[0])
        jittered = TruthCostModel(CLUSTER, jitter_sigma=0.1, seed=7)
        assert not jittered.deterministic
        assert kernel_lower_bound(plan.kernel, jittered) is None

    def test_bound_matches_on_repeat(self):
        graph = build_model("vgg19", "tiny")
        profile = exact_profile(graph, CLUSTER)
        builder = PlanBuilder(graph, CLUSTER, profile)
        plan = builder.build(candidate_strategies(
            graph, np.random.default_rng(1), 1)[0])
        first = kernel_lower_bound(plan.kernel, builder.cost)
        assert kernel_lower_bound(plan.kernel, builder.cost) == first


# --------------------------------------------------------------------- #
@st.composite
def graph_and_pool(draw):
    layers = draw(st.integers(1, 3))
    width = draw(st.sampled_from([8, 16]))
    batch = draw(st.sampled_from([4, 8]))
    branches = draw(st.booleans())
    seed = draw(st.integers(0, 1000))
    graph = random_graph(layers, width, batch, branches)
    rng = np.random.default_rng(seed)
    return graph, candidate_strategies(graph, rng, 5)


class TestWinnerIdentity:
    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_pool())
    def test_pruned_search_same_winner_order_scheduled(self, payload):
        graph, pool = payload
        profile = exact_profile(graph, CLUSTER)
        ref = PlanBuilder(graph, CLUSTER, profile)
        idx0, t0, _ = serial_winner(ref, pool, prune=False)
        pruned = PlanBuilder(graph, CLUSTER, profile)
        idx1, t1, outcomes = serial_winner(pruned, pool, best=BestSoFar())
        assert idx1 == idx0
        assert t1 == t0  # byte-equal, not approx
        # the winner itself is never a pruned outcome
        if math.isfinite(t1):
            assert not outcomes[idx1].pruned

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_pool())
    def test_pruned_search_same_winner_fifo(self, payload):
        graph, pool = payload
        profile = exact_profile(graph, CLUSTER)
        ref = PlanBuilder(graph, CLUSTER, profile,
                          use_order_scheduling=False)
        idx0, t0, _ = serial_winner(ref, pool, prune=False)
        pruned = PlanBuilder(graph, CLUSTER, profile,
                             use_order_scheduling=False)
        idx1, t1, _ = serial_winner(pruned, pool, best=BestSoFar())
        assert (idx1, t1) == (idx0, t0)

    @settings(max_examples=10, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    @given(graph_and_pool())
    def test_batch_evaluator_shared_best_same_winner(self, payload):
        graph, pool = payload
        profile = exact_profile(graph, CLUSTER)
        ref = PlanBuilder(graph, CLUSTER, profile)
        idx0, t0, _ = serial_winner(ref, pool, prune=False)
        with BatchEvaluator(PlanBuilder(graph, CLUSTER, profile),
                            max_workers=1) as batch:
            outcomes = batch.evaluate(pool, best=BestSoFar())
        times = [o.time if o.feasible else float("inf") for o in outcomes]
        idx1 = min(range(len(times)), key=times.__getitem__)
        assert (idx1, times[idx1]) == (idx0, t0)

    def test_strict_mode_midsim_prune_admissible(self):
        """strict (non-work-conserving) engine mode: a pruned partial
        clock is a lower bound, and a loose limit changes nothing."""
        graph = random_graph(2, 16, 8, True)
        profile = exact_profile(graph, CLUSTER)
        strategy = candidate_strategies(
            graph, np.random.default_rng(3), 1)[0]
        compiler = GraphCompiler(CLUSTER, profile)
        dist = compiler.compile(graph, strategy)
        cost = ProfileCostModel(CLUSTER, profile)
        sim = Simulator(cost)
        prios = ListScheduler().schedule(dist, cost).priorities
        full = sim.run(dist, priorities=prios, strict=True)
        loose = sim.run(dist, priorities=prios, strict=True,
                        prune_above=full.makespan * 2)
        assert not loose.pruned
        assert loose.makespan == full.makespan
        cut = sim.run(dist, priorities=prios, strict=True,
                      prune_above=full.makespan / 2)
        assert cut.pruned
        assert cut.makespan <= full.makespan + 1e-12

    def test_jittered_cost_disables_pruning(self):
        """Stochastic providers: pruning must not perturb RNG draws —
        the scheduler ignores prune_above outright."""
        graph = random_graph(2, 16, 8, False)
        profile = exact_profile(graph, CLUSTER)
        strategy = candidate_strategies(
            graph, np.random.default_rng(5), 1)[0]
        dist = GraphCompiler(CLUSTER, profile).compile(graph, strategy)
        ref_cost = TruthCostModel(CLUSTER, jitter_sigma=0.05, seed=11)
        ref = ListScheduler().schedule(dist, ref_cost)
        cut_cost = TruthCostModel(CLUSTER, jitter_sigma=0.05, seed=11)
        cut = ListScheduler().schedule(dist, cut_cost, prune_above=1e-12)
        assert cut.chosen == ref.chosen
        assert cut.estimated_makespan == ref.estimated_makespan
        assert not cut.sim_result.pruned


# --------------------------------------------------------------------- #
class TestCacheSoundness:
    def _pickable(self):
        """A (builder-factory, strategy, exact-time, bound) quadruple
        where the static bound is strictly below the true makespan, so a
        limit can be aimed between them to force a mid-sim prune."""
        graph = build_model("vgg19", "tiny")
        profile = exact_profile(graph, CLUSTER)
        scout = PlanBuilder(graph, CLUSTER, profile)
        for strategy in candidate_strategies(
                graph, np.random.default_rng(9), 8):
            outcome = scout.evaluate(strategy)
            if not outcome.feasible:
                continue
            bound = kernel_lower_bound(scout.build(strategy).kernel,
                                       scout.cost)
            if bound is not None and bound < outcome.time * 0.95:
                return (lambda: PlanBuilder(graph, CLUSTER, profile),
                        strategy, outcome.time, bound)
        pytest.skip("no candidate with bound strictly below makespan")

    def test_midsim_pruned_outcome_not_served_without_threshold(self):
        make, strategy, exact, bound = self._pickable()
        builder = make()
        limit = (bound + exact) / 2.0
        first = builder.evaluate(strategy, prune_above=limit)
        assert first.pruned and first.prune_stage == "midsim"
        # same candidate with no threshold: must re-evaluate exactly,
        # never serve the threshold-dependent pruned entry
        second = builder.evaluate(strategy)
        assert not second.pruned
        assert second.time == exact

    def test_bound_pruned_outcome_served_only_under_tighter_threshold(self):
        make, strategy, exact, bound = self._pickable()
        builder = make()
        tight = bound / 2.0
        first = builder.evaluate(strategy, prune_above=tight)
        assert first.pruned and first.prune_stage == "bound"
        hits_before = builder.outcome_cache.hits
        again = builder.evaluate(strategy, prune_above=tight)
        assert again.pruned
        assert builder.outcome_cache.hits == hits_before + 1
        # loosened threshold above the recorded bound: cache miss, the
        # candidate might now win — exact evaluation required
        loose = builder.evaluate(strategy, prune_above=exact * 2.0)
        assert not loose.pruned
        assert loose.time == exact

    def test_pruned_counts_and_feasibility(self):
        make, strategy, exact, bound = self._pickable()
        builder = make()
        outcome = builder.evaluate(strategy, prune_above=bound / 2.0)
        assert outcome.pruned
        assert not outcome.feasible
        assert outcome.time == float("inf")
        assert outcome.bound is not None
        assert builder.evals_pruned == 1
        assert builder.evals_total == 1

    def test_trace_bypasses_pruning(self):
        make, strategy, exact, bound = self._pickable()
        builder = make()
        outcome = builder.evaluate(strategy, trace=True,
                                   prune_above=bound / 2.0)
        assert not outcome.pruned
        assert outcome.time == exact


# --------------------------------------------------------------------- #
class TestWireProtocol:
    def test_version_bumped_for_prune_fields(self):
        assert WIRE_VERSION == 2
        msg = EvalRequestMessage(job="j", prune_above={"ctx": 1.5})
        wire = msg.to_wire()
        assert wire["v"] == 2
        decoded = message_from_wire(wire)
        assert decoded.prune_above == {"ctx": 1.5}
        assert decoded.prune is True

    def test_old_version_frame_rejected(self):
        wire = EvalRequestMessage(job="j").to_wire()
        wire["v"] = 1
        with pytest.raises(FleetProtocolError):
            message_from_wire(wire)
