"""Shared fixtures: tiny graphs, clusters, and profiles (session-scoped)."""

from __future__ import annotations

import pytest

from repro.cluster import cluster_4gpu, cluster_8gpu, homogeneous_cluster
from repro.graph.models import build_model
from repro.profiling import MeasurementNoise, Profiler

from tests.helpers import make_mlp


@pytest.fixture(scope="session")
def mlp_graph():
    return make_mlp()


@pytest.fixture(scope="session")
def tiny_vgg():
    return build_model("vgg19", "tiny")


@pytest.fixture(scope="session")
def tiny_transformer():
    return build_model("transformer", "tiny")


@pytest.fixture(scope="session")
def four_gpu():
    return cluster_4gpu()


@pytest.fixture(scope="session")
def eight_gpu():
    return cluster_8gpu()


@pytest.fixture(scope="session")
def homog_4gpu():
    return homogeneous_cluster(4)


@pytest.fixture(scope="session")
def mlp_profile(mlp_graph, four_gpu):
    return Profiler(seed=0).profile(mlp_graph, four_gpu)


@pytest.fixture(scope="session")
def mlp_profile_exact(mlp_graph, four_gpu):
    return Profiler(noise=MeasurementNoise(0.0), seed=0).profile(
        mlp_graph, four_gpu
    )


@pytest.fixture(scope="session")
def vgg_profile(tiny_vgg, four_gpu):
    return Profiler(seed=0).profile(tiny_vgg, four_gpu)
