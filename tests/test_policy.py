"""Tests for the policy network, action encoding/decoding, and rewards."""

import numpy as np
import pytest

from repro.agent import (
    DP_ACTIONS,
    FeatureEncoder,
    MovingAverageBaseline,
    PolicyNetwork,
    action_to_op_strategy,
    actions_to_strategy,
    compute_reward,
    num_actions,
    uniform_action_vector,
)
from repro.agent.environment import EvalOutcome
from repro.errors import StrategyError
from repro.graph.grouping import group_operations
from repro.parallel import CommMethod, ParallelKind, ReplicaAllocation


@pytest.fixture(scope="module")
def grouping(mlp_graph):
    avg = {n: 1.0 for n in mlp_graph.op_names}
    return group_operations(mlp_graph, avg, max_groups=8)


# make module-scoped fixtures from conftest session fixtures available
@pytest.fixture(scope="module")
def mlp_graph():
    from tests.helpers import make_mlp
    return make_mlp()


class TestActionEncoding:
    def test_num_actions(self, four_gpu):
        assert num_actions(four_gpu) == 4 + 4

    def test_mp_actions_decode_to_devices(self, four_gpu):
        for m in range(4):
            st = action_to_op_strategy(four_gpu, m)
            assert st.kind is ParallelKind.MP
            assert st.device == f"gpu{m}"

    def test_dp_actions_decode(self, four_gpu):
        m = four_gpu.num_devices
        st = action_to_op_strategy(four_gpu, m + 0)
        assert st.allocation is ReplicaAllocation.EVEN
        assert st.comm is CommMethod.PS
        st = action_to_op_strategy(four_gpu, m + 3)
        assert st.allocation is ReplicaAllocation.PROPORTIONAL
        assert st.comm is CommMethod.ALLREDUCE

    def test_out_of_range_rejected(self, four_gpu):
        with pytest.raises(StrategyError):
            action_to_op_strategy(four_gpu, 8)
        with pytest.raises(StrategyError):
            action_to_op_strategy(four_gpu, -1)

    def test_actions_to_strategy_covers_graph(self, mlp_graph, four_gpu,
                                              grouping):
        actions = [0] * grouping.num_groups
        st = actions_to_strategy(mlp_graph, four_gpu, grouping, actions)
        for name in mlp_graph.op_names:
            assert st.get(name).devices() == ["gpu0"]

    def test_wrong_action_count_rejected(self, mlp_graph, four_gpu, grouping):
        with pytest.raises(StrategyError):
            actions_to_strategy(mlp_graph, four_gpu, grouping, [0])

    def test_uniform_action_vector(self, four_gpu, grouping):
        vec = uniform_action_vector(four_gpu, grouping,
                                    ReplicaAllocation.PROPORTIONAL,
                                    CommMethod.ALLREDUCE)
        assert len(vec) == grouping.num_groups
        assert all(a == 4 + 3 for a in vec)

    def test_dp_actions_table_matches_paper_order(self):
        labels = [(a.value, c.value) for a, c in DP_ACTIONS]
        assert labels == [("even", "ps"), ("even", "allreduce"),
                          ("proportional", "ps"),
                          ("proportional", "allreduce")]


class TestPolicyNetwork:
    def _policy(self, feature_dim=10, actions=8):
        return PolicyNetwork(feature_dim, actions, gat_hidden=16,
                             gat_layers=2, gat_heads=2, strategy_dim=16,
                             strategy_heads=2, strategy_layers=1, seed=0)

    def _inputs(self, n_ops=12, n_groups=4, feature_dim=10):
        rng = np.random.default_rng(0)
        features = rng.normal(size=(n_ops, feature_dim))
        adj = rng.random((n_ops, n_ops)) < 0.2
        np.fill_diagonal(adj, True)
        adj |= adj.T
        assignment = np.zeros((n_groups, n_ops))
        assignment[rng.integers(0, n_groups, n_ops), np.arange(n_ops)] = 1.0
        return features, adj, assignment

    def test_sample_shapes(self):
        policy = self._policy()
        f, a, s = self._inputs()
        sample = policy.sample(f, a, s, np.random.default_rng(1))
        assert sample.actions.shape == (4,)
        assert (sample.actions >= 0).all() and (sample.actions < 8).all()
        assert sample.probs.shape == (4, 8)
        assert np.allclose(sample.probs.sum(axis=-1), 1.0)

    def test_greedy_picks_argmax(self):
        policy = self._policy()
        f, a, s = self._inputs()
        sample = policy.sample(f, a, s, np.random.default_rng(1), greedy=True)
        assert (sample.actions == sample.probs.argmax(axis=-1)).all()

    def test_forced_actions(self):
        policy = self._policy()
        f, a, s = self._inputs()
        forced = np.asarray([1, 2, 3, 0])
        sample = policy.sample(f, a, s, np.random.default_rng(1),
                               forced_actions=forced)
        assert (sample.actions == forced).all()

    def test_log_prob_matches_probs(self):
        policy = self._policy()
        f, a, s = self._inputs()
        sample = policy.sample(f, a, s, np.random.default_rng(2))
        expected = np.log(
            sample.probs[np.arange(4), sample.actions]
        ).sum()
        assert sample.log_prob.item() == pytest.approx(expected, rel=1e-6)

    def test_entropy_positive(self):
        policy = self._policy()
        f, a, s = self._inputs()
        sample = policy.sample(f, a, s, np.random.default_rng(3))
        assert sample.entropy.item() > 0

    def test_gradients_flow_to_all_parameters(self):
        policy = self._policy()
        f, a, s = self._inputs()
        sample = policy.sample(f, a, s, np.random.default_rng(4))
        sample.log_prob.backward()
        with_grad = sum(1 for p in policy.parameters() if p.grad is not None)
        assert with_grad > 0.9 * len(policy.parameters())

    def test_sampling_deterministic_per_seed(self):
        policy = self._policy()
        f, a, s = self._inputs()
        s1 = policy.sample(f, a, s, np.random.default_rng(7))
        s2 = policy.sample(f, a, s, np.random.default_rng(7))
        assert (s1.actions == s2.actions).all()


class TestReward:
    def _outcome(self, time, oom=False, infeasible=False):
        return EvalOutcome(time=time, oom=oom, result=None, dist_ops=1,
                           infeasible=infeasible)

    def test_feasible_reward(self):
        assert compute_reward(self._outcome(4.0)) == pytest.approx(-2.0)

    def test_oom_multiplies_by_ten(self):
        assert compute_reward(self._outcome(4.0, oom=True)) == pytest.approx(-20.0)

    def test_infeasible_huge_penalty(self):
        assert compute_reward(self._outcome(float("inf"), infeasible=True)) < -100

    def test_faster_is_better(self):
        assert compute_reward(self._outcome(0.1)) > compute_reward(
            self._outcome(1.0))

    def test_baseline_moving_average(self):
        b = MovingAverageBaseline(0.5)
        assert b.update(10.0) == 10.0    # first reward is its own baseline
        assert b.update(20.0) == 10.0    # returns value before folding
        assert b.value == pytest.approx(15.0)

    def test_baseline_invalid_decay(self):
        with pytest.raises(ValueError):
            MovingAverageBaseline(1.5)


class TestFeatureEncoder:
    def test_feature_matrix_standardized(self, four_gpu):
        from tests.helpers import make_mlp
        from repro.profiling import Profiler
        g = make_mlp(name="feat_mlp")
        profile = Profiler(seed=0).profile(g, four_gpu)
        enc = FeatureEncoder(four_gpu, profile)
        mat = enc.encode(g)
        assert mat.shape[0] == len(g)
        assert abs(mat.mean()) < 0.5
        assert np.isfinite(mat).all()

    def test_adjacency_symmetric_with_self_loops(self, four_gpu):
        from tests.helpers import make_mlp
        from repro.profiling import Profiler
        g = make_mlp(name="feat_mlp2")
        profile = Profiler(seed=0).profile(g, four_gpu)
        enc = FeatureEncoder(four_gpu, profile)
        adj = enc.adjacency_mask(g)
        assert adj.diagonal().all()
        assert (adj == adj.T).all()

    def test_avg_exec_times_cover_graph(self, four_gpu):
        from tests.helpers import make_mlp
        from repro.profiling import Profiler
        g = make_mlp(name="feat_mlp3")
        profile = Profiler(seed=0).profile(g, four_gpu)
        enc = FeatureEncoder(four_gpu, profile)
        avg = enc.average_exec_times(g)
        assert set(avg) == set(g.op_names)
        assert all(v > 0 for v in avg.values())
