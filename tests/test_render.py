"""Fast unit tests for the experiment renderers (synthetic data)."""

import pytest

from repro.experiments import (
    render_ablation,
    render_end_to_end,
    render_fig3a,
    render_fig8,
    render_fig9,
    render_generalization,
    render_order_scheduling,
    render_per_iteration,
    strategy_mix_table,
)
from repro.experiments.ablations import AblationRow
from repro.experiments.common import MeasuredStrategy
from repro.experiments.figures import Fig3aPoint, Fig8Bar, Fig9Bar
from repro.experiments.generalization import GeneralizationRow
from repro.experiments.tables import (
    EndToEndRow,
    OrderSchedulingRow,
    PerIterationRow,
)


def measured(label, time, oom=False, mix=None):
    return MeasuredStrategy(label=label, time=time, oom=oom, mix=mix or {})


def sample_row():
    return PerIterationRow(
        model="vgg19", label="VGG-19",
        heterog=measured("HeteroG", 0.5, mix={"CP-AR": 0.8, "MP:gpu0": 0.2}),
        baselines={
            "EV-PS": measured("EV-PS", 1.0),
            "EV-AR": measured("EV-AR", 0.7),
            "CP-PS": measured("CP-PS", 0.9),
            "CP-AR": measured("CP-AR", 0.6),
        },
    )


class TestPerIterationRendering:
    def test_speedups(self):
        row = sample_row()
        speedups = row.speedups()
        assert speedups["EV-PS"] == pytest.approx(1.0)
        assert speedups["CP-AR"] == pytest.approx(0.2)

    def test_render_includes_speedup_percent(self):
        text = render_per_iteration([sample_row()])
        assert "100.0%" in text
        assert "VGG-19" in text

    def test_oom_rendering(self):
        row = sample_row()
        row.baselines["EV-PS"] = measured("EV-PS", float("inf"), oom=True)
        text = render_per_iteration([row])
        assert "OOM/-" in text
        assert not row.all_baselines_oom()

    def test_all_oom(self):
        row = sample_row()
        for k in row.baselines:
            row.baselines[k] = measured(k, float("inf"), oom=True)
        assert row.all_baselines_oom()

    def test_strategy_mix_table(self, four_gpu):
        row = sample_row()
        text = strategy_mix_table([row], four_gpu)
        assert "80.0%" in text   # CP-AR share
        assert "20.0%" in text   # MP:gpu0 share


class TestOtherRenderers:
    def test_end_to_end(self):
        row = EndToEndRow(model="vgg19", gpus=8, global_batch=192,
                          minutes={"HeteroG": 500.0, "CP-PS": 900.0,
                                   "CP-AR": 650.0})
        text = render_end_to_end([row])
        assert "80.0%" in text  # (900-500)/500

    def test_order_scheduling(self):
        row = OrderSchedulingRow(model="vgg19", with_order=0.5, fifo=0.6)
        assert row.speedup == pytest.approx(0.2)
        assert "20.0%" in render_order_scheduling([row])

    def test_fig3a(self):
        point = Fig3aPoint(model="vgg19", even=1.2, proportional=1.0)
        assert point.speedup == pytest.approx(0.2)
        assert "vgg19" in render_fig3a([point])

    def test_fig8(self):
        bar = Fig8Bar(model="vgg19", scheme="HeteroG", per_iteration=0.5,
                      computation=0.4, communication=0.3)
        assert bar.overlap_ratio == pytest.approx(1.4)
        assert "1.40" in render_fig8([bar])

    def test_fig9_normalization(self):
        bar = Fig9Bar(model="bert", speeds={"HeteroG": 150.0,
                                            "Horovod": 100.0,
                                            "Post": 50.0})
        norm = bar.normalized()
        assert norm["HeteroG"] == pytest.approx(1.5)
        assert "1.50" in render_fig9([bar])

    def test_fig9_zero_horovod(self):
        bar = Fig9Bar(model="bert", speeds={"HeteroG": 150.0,
                                            "Horovod": 0.0})
        assert bar.normalized()["HeteroG"] == 0.0

    def test_generalization(self):
        row = GeneralizationRow(model="vgg19", scratch_episodes=40,
                                finetune_episodes=10, scratch_seconds=100.0,
                                finetune_seconds=20.0, target_time=0.5)
        assert row.episode_ratio == pytest.approx(0.25)
        assert row.time_ratio == pytest.approx(0.2)
        assert "25.0%" in render_generalization([row])

    def test_ablation(self):
        rows = [AblationRow("hybrid", 0.5), AblationRow("oom", 1.0, oom=True)]
        text = render_ablation(rows)
        assert "OOM" in text and "0.500" in text
