"""Tests for the gradient-fusion extension."""

import pytest

from repro.baselines import dp_strategy
from repro.cluster import cluster_4gpu
from repro.errors import CompileError
from repro.parallel import DistOpKind, GraphCompiler
from repro.parallel.fusion import count_collectives, fuse_allreduces
from repro.profiling import exact_profile
from repro.scheduling import ListScheduler
from repro.simulation import ProfileCostModel, Simulator

from tests.helpers import make_mlp


@pytest.fixture(scope="module")
def compiled():
    cluster = cluster_4gpu()
    graph = make_mlp(layers=6, width=64, name="fuse_mlp")
    profile = exact_profile(graph, cluster)
    compiler = GraphCompiler(cluster, profile)
    dist = compiler.compile(graph, dp_strategy("EV-AR", graph, cluster))
    return cluster, profile, dist


class TestFusion:
    def test_reduces_collective_count(self, compiled):
        _, _, dist = compiled
        fused = fuse_allreduces(dist, bucket_bytes=10 ** 9)
        assert count_collectives(fused) < count_collectives(dist)
        assert count_collectives(fused) == 1  # one ring, huge bucket

    def test_total_bytes_preserved(self, compiled):
        _, _, dist = compiled
        fused = fuse_allreduces(dist, bucket_bytes=10 ** 9)
        orig = sum(o.size_bytes for o in dist
                   if o.kind is DistOpKind.ALLREDUCE)
        new = sum(o.size_bytes for o in fused
                  if o.kind is DistOpKind.ALLREDUCE)
        assert new == pytest.approx(orig)

    def test_bucket_size_respected(self, compiled):
        _, _, dist = compiled
        sizes = sorted(o.size_bytes for o in dist
                       if o.kind is DistOpKind.ALLREDUCE)
        limit = sizes[-1] + sizes[0] - 1  # can never fit two largest
        fused = fuse_allreduces(dist, bucket_bytes=int(limit))
        for op in fused:
            if op.kind is DistOpKind.ALLREDUCE:
                # single oversized members allowed, pairs must fit
                assert op.size_bytes <= limit or "(x" not in op.name

    def test_graph_stays_acyclic_and_complete(self, compiled):
        _, _, dist = compiled
        fused = fuse_allreduces(dist, bucket_bytes=1 << 20)
        fused.validate()
        non_ar = sum(1 for o in dist if o.kind is not DistOpKind.ALLREDUCE)
        non_ar_fused = sum(1 for o in fused
                           if o.kind is not DistOpKind.ALLREDUCE)
        assert non_ar == non_ar_fused

    def test_applies_rewired_to_fused_node(self, compiled):
        _, _, dist = compiled
        fused = fuse_allreduces(dist, bucket_bytes=10 ** 9)
        (collective,) = [o for o in fused
                         if o.kind is DistOpKind.ALLREDUCE]
        succs = [fused.op(s) for s in fused.successors(collective.name)]
        assert succs
        assert all(s.kind is DistOpKind.APPLY for s in succs)

    def test_invalid_bucket(self, compiled):
        _, _, dist = compiled
        with pytest.raises(CompileError):
            fuse_allreduces(dist, bucket_bytes=0)

    def test_simulation_still_runs(self, compiled):
        cluster, profile, dist = compiled
        fused = fuse_allreduces(dist, bucket_bytes=1 << 22)
        cost = ProfileCostModel(cluster, profile)
        schedule = ListScheduler().schedule(fused, cost)
        result = Simulator(cost).run(fused, priorities=schedule.priorities)
        assert result.makespan > 0

    def test_moderate_fusion_helps_many_small_gradients(self):
        """The Horovod-fusion effect: a deep stack of small gradients runs
        faster with bucketing (launch overhead amortized)."""
        cluster = cluster_4gpu()
        graph = make_mlp(layers=12, width=64, name="fuse_deep_mlp")
        profile = exact_profile(graph, cluster)
        compiler = GraphCompiler(cluster, profile)
        dist = compiler.compile(graph, dp_strategy("EV-AR", graph, cluster))
        cost = ProfileCostModel(cluster, profile)

        def run(g):
            schedule = ListScheduler().schedule(g, cost)
            return Simulator(cost).run(g,
                                       priorities=schedule.priorities).makespan

        base = run(dist)
        fused = run(fuse_allreduces(dist, bucket_bytes=1 << 20))
        assert fused < base
