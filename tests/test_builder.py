"""Tests for GraphBuilder and training-graph derivation."""

import pytest

from repro.errors import GraphError
from repro.graph.builder import GraphBuilder, build_training_graph
from repro.graph.op import DTYPE_BYTES, OpPhase


def simple_builder(batch=8):
    b = GraphBuilder("t", batch)
    x = b.input((16,))
    x = b.dense(x, 32, layer="fc0")
    b.softmax_loss(x, 10)
    return b


class TestLayers:
    def test_input_shape(self):
        b = GraphBuilder("t", 4)
        name = b.input((8, 8, 3))
        assert b.graph.op(name).output.shape == (4, 8, 8, 3)

    def test_invalid_batch(self):
        with pytest.raises(GraphError):
            GraphBuilder("t", 0)

    def test_conv2d_shapes_and_params(self):
        b = GraphBuilder("t", 2)
        x = b.input((16, 16, 3))
        c = b.conv2d(x, 8, kernel=3, stride=2)
        op = b.graph.op(c)
        assert op.output.shape == (2, 8, 8, 8)
        assert op.param_bytes == 3 * 3 * 3 * 8 * DTYPE_BYTES
        assert op.flops > 0

    def test_conv2d_requires_nhwc(self):
        b = GraphBuilder("t", 2)
        x = b.input((16,))
        with pytest.raises(GraphError):
            b.conv2d(x, 8)

    def test_depthwise_params_smaller(self):
        b = GraphBuilder("t", 2)
        x = b.input((8, 8, 16))
        full = b.graph.op(b.conv2d(x, 16)).param_bytes
        dw = b.graph.op(b.conv2d(x, 16, depthwise=True)).param_bytes
        assert dw < full

    def test_dense_uses_last_dim(self):
        b = GraphBuilder("t", 4)
        x = b.input((6, 10))
        d = b.dense(x, 5)
        assert b.graph.op(d).output.shape == (4, 6, 5)

    def test_embedding_param_heavy(self):
        b = GraphBuilder("t", 4)
        x = b.input((12,))
        e = b.embedding(x, vocab=1000, hidden=64)
        op = b.graph.op(e)
        assert op.param_bytes == 1000 * 64 * DTYPE_BYTES
        assert op.output.shape == (4, 12, 64)

    def test_pool_halves_spatial(self):
        b = GraphBuilder("t", 2)
        x = b.input((8, 8, 4))
        p = b.pool(x)
        assert b.graph.op(p).output.shape == (2, 4, 4, 4)

    def test_add_n_shape_mismatch(self):
        b = GraphBuilder("t", 2)
        x = b.input((8,))
        y = b.dense(x, 4)
        with pytest.raises(GraphError):
            b.add_n([x, y])

    def test_concat_sums_channels(self):
        b = GraphBuilder("t", 2)
        x = b.input((8, 8, 4))
        y = b.conv2d(x, 6, kernel=1)
        z = b.conv2d(x, 2, kernel=1)
        c = b.concat([y, z])
        assert b.graph.op(c).output.shape == (2, 8, 8, 8)

    def test_self_attention_keeps_shape(self):
        b = GraphBuilder("t", 2)
        x = b.input((8,))
        # fake a [B, L, H] tensor via embedding
        e = b.embedding(x, 100, 16)
        a = b.self_attention(e, heads=2, layer="l0")
        assert b.graph.op(a).output.shape == (2, 8, 16)

    def test_loss_adds_classifier_if_needed(self):
        b = simple_builder()
        assert "logits" in b.graph

    def test_fresh_names_unique(self):
        b = GraphBuilder("t", 2)
        x = b.input((4,))
        d1 = b.dense(x, 4)
        d2 = b.dense(x, 4)
        assert d1 != d2


class TestTrainingGraph:
    def test_backward_ops_created(self):
        g = build_training_graph(simple_builder())
        phases = {p: [o.name for o in g.ops_in_phase(p)] for p in OpPhase}
        assert phases[OpPhase.BACKWARD]
        assert phases[OpPhase.APPLY]

    def test_one_apply_per_param_op(self):
        g = build_training_graph(simple_builder())
        param_fwd = [o for o in g if o.param_bytes and
                     o.phase in (OpPhase.FORWARD, OpPhase.LOSS)]
        applies = g.ops_in_phase(OpPhase.APPLY)
        assert len(applies) == len(param_fwd)

    def test_pgrad_feeds_apply(self):
        g = build_training_graph(simple_builder())
        for op in g:
            if op.produces_param_gradient:
                succ_phases = {g.op(s).phase for s in g.successors(op.name)}
                assert OpPhase.APPLY in succ_phases

    def test_pgrad_batch_scaled_unbatched_output(self):
        g = build_training_graph(simple_builder())
        pgrads = [o for o in g if o.produces_param_gradient]
        assert pgrads
        for op in pgrads:
            assert op.batch_scaled
            assert op.output.batch_dim is None

    def test_backward_mirrors_forward_flops(self):
        b = simple_builder()
        fwd_flops = b.graph.total_flops()
        g = build_training_graph(b)
        # BP (grad-input + param-grad) roughly doubles forward compute
        assert g.total_flops() > 2 * fwd_flops

    def test_input_has_no_gradient(self):
        g = build_training_graph(simple_builder())
        assert "input_grad" not in g

    def test_requires_single_loss(self):
        b = GraphBuilder("t", 2)
        x = b.input((4,))
        b.dense(x, 4)
        with pytest.raises(GraphError):
            build_training_graph(b)

    def test_training_graph_is_dag(self):
        g = build_training_graph(simple_builder())
        g.validate()

    def test_backward_refs_forward(self):
        g = build_training_graph(simple_builder())
        for op in g.ops_in_phase(OpPhase.BACKWARD):
            if op.forward_ref:
                assert op.forward_ref in g
