"""Tests for DP baselines and the related-work schemes."""

import pytest

from repro.baselines import (
    DP_BASELINES,
    FlexFlowSearch,
    PostSearch,
    all_dp_strategies,
    dp_strategy,
    hetpipe_strategy,
    horovod_deployment,
    horovod_strategy,
    virtual_workers,
)
from repro.parallel import CommMethod, ParallelKind

from tests.helpers import make_mlp


class TestDPBaselines:
    def test_all_four_build(self, mlp_graph, four_gpu):
        strategies = all_dp_strategies(mlp_graph, four_gpu)
        assert set(strategies) == set(DP_BASELINES)

    def test_unknown_rejected(self, mlp_graph, four_gpu):
        with pytest.raises(ValueError):
            dp_strategy("ZZ-99", mlp_graph, four_gpu)

    def test_ev_means_one_replica_per_device(self, mlp_graph, four_gpu):
        st = dp_strategy("EV-AR", mlp_graph, four_gpu)
        name = next(n for n in mlp_graph.op_names
                    if mlp_graph.op(n).is_replicable)
        op_st = st.get(name)
        assert op_st.total_replicas == 4
        assert all(c == 1 for c in op_st.replicas.values())

    def test_cp_gives_v100_more_replicas(self, mlp_graph, four_gpu):
        st = dp_strategy("CP-PS", mlp_graph, four_gpu)
        name = next(n for n in mlp_graph.op_names
                    if mlp_graph.op(n).is_replicable)
        op_st = st.get(name)
        assert op_st.replicas["gpu0"] > op_st.replicas["gpu2"]
        assert op_st.comm is CommMethod.PS


class TestHorovod:
    def test_strategy_is_ev_ar(self, mlp_graph, four_gpu):
        st = horovod_strategy(mlp_graph, four_gpu)
        name = next(n for n in mlp_graph.op_names
                    if mlp_graph.op(n).is_replicable)
        assert st.get(name).comm is CommMethod.ALLREDUCE

    def test_deployment_uses_default_order(self, mlp_graph, four_gpu):
        """Horovod keeps the framework's (nondeterministic) order, not
        HeteroG's rank order."""
        dep = horovod_deployment(mlp_graph, four_gpu)
        assert dep.schedule.ranks is None


class TestHetPipe:
    def test_virtual_workers_per_server(self, eight_gpu):
        vws = virtual_workers(eight_gpu)
        assert len(vws) == 4  # 4 servers in the 8-GPU preset
        assert sum(len(v) for v in vws) == 8

    def test_strategy_replicates_across_vws(self, mlp_graph, four_gpu):
        st = hetpipe_strategy(mlp_graph, four_gpu)
        name = next(n for n in mlp_graph.op_names
                    if mlp_graph.op(n).is_replicable)
        op_st = st.get(name)
        assert op_st.kind is ParallelKind.DP
        # one replica device per virtual worker (2 servers in 4-GPU preset)
        assert len(op_st.replicas) == 2

    def test_layer_blocks_spread_within_vw(self, four_gpu):
        g = make_mlp(name="hp_mlp", layers=6)
        st = hetpipe_strategy(g, four_gpu)
        devices_used = set()
        for name in g.op_names:
            devices_used.update(st.get(name).devices())
        assert devices_used == set(four_gpu.device_ids)

    def test_runs_end_to_end(self, mlp_graph, four_gpu):
        from repro.runtime import ExecutionEngine, build_deployment
        st = hetpipe_strategy(mlp_graph, four_gpu)
        dep = build_deployment(mlp_graph, four_gpu, st)
        stats = ExecutionEngine(four_gpu).measure(
            dep.dist, dep.schedule, dep.resident_bytes, iterations=2)
        assert stats.mean > 0


class TestSearchBaselines:
    def test_post_only_places(self, four_gpu):
        g = make_mlp(name="post_mlp")
        result = PostSearch(g, four_gpu, max_groups=6, seed=0).search(
            rounds=2, samples_per_round=4)
        for name in g.op_names:
            assert result.strategy.get(name).kind is ParallelKind.MP
        assert result.evaluations == 8
        assert result.time < float("inf")

    def test_flexflow_improves_over_start(self, four_gpu):
        g = make_mlp(name="ff_mlp")
        search = FlexFlowSearch(g, four_gpu, max_groups=6, seed=0)
        import numpy as np
        m = four_gpu.num_devices
        start = search._evaluate(np.full(search.grouping.num_groups, m + 1))
        result = search.search(iterations=25)
        assert result.time <= start + 1e-12

    def test_flexflow_never_uses_ps(self, four_gpu):
        g = make_mlp(name="ff_mlp2")
        result = FlexFlowSearch(g, four_gpu, max_groups=6, seed=1).search(
            iterations=15)
        for name in g.op_names:
            st = result.strategy.get(name)
            if st.kind is ParallelKind.DP:
                assert st.comm is CommMethod.ALLREDUCE

    def test_search_deterministic_per_seed(self, four_gpu):
        g = make_mlp(name="det_mlp")
        r1 = PostSearch(g, four_gpu, max_groups=5, seed=3).search(rounds=2)
        r2 = PostSearch(g, four_gpu, max_groups=5, seed=3).search(rounds=2)
        assert r1.time == r2.time
