"""Additional metrics/result tests."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.simulation.metrics import SimulationResult, union_length


class TestUnionLength:
    @given(st.lists(st.tuples(st.floats(0, 100), st.floats(0, 10)),
                    max_size=20))
    @settings(max_examples=30, deadline=None)
    def test_union_bounds(self, raw):
        intervals = [(s, s + d) for s, d in raw]
        total = union_length(intervals)
        if not intervals:
            assert total == 0.0
            return
        span = max(e for _, e in intervals) - min(s for s, _ in intervals)
        assert 0.0 <= total <= span + 1e-9
        assert total <= sum(e - s for s, e in intervals) + 1e-9

    def test_disjoint_sum(self):
        assert union_length([(0, 1), (2, 3), (4, 5)]) == pytest.approx(3.0)

    def test_nested(self):
        assert union_length([(0, 10), (2, 3)]) == pytest.approx(10.0)


class TestSimulationResult:
    def _result(self, **kw):
        defaults = dict(makespan=2.0,
                        device_busy={"gpu0": 1.5, "gpu1": 1.0},
                        communication_time=0.8)
        defaults.update(kw)
        return SimulationResult(**defaults)

    def test_computation_time_is_max_busy(self):
        assert self._result().computation_time == pytest.approx(1.5)

    def test_overlap_ratio(self):
        assert self._result().overlap_ratio == pytest.approx((1.5 + 0.8) / 2)

    def test_zero_makespan(self):
        r = self._result(makespan=0.0)
        assert r.overlap_ratio == 0.0

    def test_utilization_values(self):
        util = self._result().utilization()
        assert util["gpu0"] == pytest.approx(0.75)
        assert util["gpu1"] == pytest.approx(0.5)

    def test_oom_property(self):
        assert not self._result().oom
        assert self._result(oom_devices=["gpu0"]).oom

    def test_summary_keys(self):
        summary = self._result().summary()
        assert {"makespan", "computation_time", "communication_time",
                "overlap_ratio", "oom"} == set(summary)

    def test_empty_result(self):
        r = SimulationResult(makespan=0.0)
        assert r.computation_time == 0.0
        assert r.utilization() == {}
