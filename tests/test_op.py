"""Unit tests for TensorSpec and Operation."""

import pytest
from hypothesis import given, strategies as st

from repro.graph.op import DTYPE_BYTES, Operation, OpPhase, TensorSpec


class TestTensorSpec:
    def test_num_elements(self):
        assert TensorSpec((4, 8, 2)).num_elements == 64

    def test_size_bytes(self):
        assert TensorSpec((10,)).size_bytes == 10 * DTYPE_BYTES

    def test_scalarish_shape(self):
        assert TensorSpec((3,), batch_dim=None).num_elements == 3

    def test_batch_size(self):
        assert TensorSpec((16, 3)).batch_size == 16

    def test_no_batch_dim(self):
        assert TensorSpec((16, 3), batch_dim=None).batch_size is None

    def test_batch_dim_out_of_range(self):
        with pytest.raises(ValueError):
            TensorSpec((4,), batch_dim=2)

    def test_with_batch_resizes(self):
        spec = TensorSpec((16, 3, 3))
        assert spec.with_batch(4).shape == (4, 3, 3)

    def test_with_batch_noop_for_unbatched(self):
        spec = TensorSpec((16, 3), batch_dim=None)
        assert spec.with_batch(4) is spec

    def test_per_sample_bytes(self):
        spec = TensorSpec((8, 10))
        assert spec.per_sample_bytes() == 10 * DTYPE_BYTES

    def test_per_sample_bytes_unbatched(self):
        spec = TensorSpec((100,), batch_dim=None)
        assert spec.per_sample_bytes() == spec.size_bytes

    @given(st.integers(1, 64), st.integers(1, 32))
    def test_with_batch_preserves_per_sample(self, batch, features):
        spec = TensorSpec((batch, features))
        resized = spec.with_batch(batch * 2)
        assert resized.per_sample_bytes() == spec.per_sample_bytes()
        assert resized.size_bytes == 2 * spec.size_bytes


class TestOperation:
    def _op(self, **kw):
        defaults = dict(name="op", op_type="MatMul",
                        output=TensorSpec((4, 8)), flops=100.0)
        defaults.update(kw)
        return Operation(**defaults)

    def test_basic_fields(self):
        op = self._op()
        assert op.output_bytes == 4 * 8 * DTYPE_BYTES
        assert op.is_replicable

    def test_empty_name_rejected(self):
        with pytest.raises(ValueError):
            self._op(name="")

    def test_negative_flops_rejected(self):
        with pytest.raises(ValueError):
            self._op(flops=-1.0)

    def test_negative_params_rejected(self):
        with pytest.raises(ValueError):
            self._op(param_bytes=-4)

    def test_unbatched_type_with_batch_dim_rejected(self):
        with pytest.raises(ValueError):
            self._op(op_type="ApplyGradient", output=TensorSpec((4, 8)))

    def test_batch_scaled_inferred_true(self):
        assert self._op().batch_scaled is True

    def test_batch_scaled_inferred_false(self):
        op = self._op(output=TensorSpec((8,), batch_dim=None))
        assert op.batch_scaled is False
        assert not op.is_replicable

    def test_batch_scaled_override(self):
        """Conv2DBpFilter: unbatched output but batch-scaled compute."""
        op = self._op(op_type="Conv2DBpFilter",
                      output=TensorSpec((64,), batch_dim=None),
                      batch_scaled=True, phase=OpPhase.BACKWARD,
                      param_bytes=256)
        assert op.is_replicable
        assert op.produces_param_gradient

    def test_scaled_flops_batched(self):
        assert self._op(flops=100.0).scaled_flops(0.25) == 25.0

    def test_scaled_flops_unbatched(self):
        op = self._op(output=TensorSpec((8,), batch_dim=None), flops=100.0)
        assert op.scaled_flops(0.25) == 100.0

    def test_produces_param_gradient_requires_backward(self):
        op = self._op(param_bytes=64)  # forward op with params
        assert not op.produces_param_gradient

    @given(st.floats(0.01, 1.0))
    def test_scaled_flops_linear(self, fraction):
        op = self._op(flops=1000.0)
        assert op.scaled_flops(fraction) == pytest.approx(1000.0 * fraction)
