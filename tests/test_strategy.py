"""Tests for strategy types and grouping."""

import pytest

from repro.errors import GraphError, StrategyError
from repro.graph.grouping import group_operations
from repro.parallel import (
    CommMethod,
    OpStrategy,
    ParallelKind,
    ReplicaAllocation,
    Strategy,
    even_replica_counts,
    make_dp_strategy,
    make_mp_strategy,
    proportional_replica_counts,
    single_device_strategy,
    uniform_strategy,
)


class TestOpStrategy:
    def test_mp_requires_device(self):
        with pytest.raises(StrategyError):
            OpStrategy(ParallelKind.MP)

    def test_mp_rejects_replicas(self):
        with pytest.raises(StrategyError):
            OpStrategy(ParallelKind.MP, device="gpu0", replicas={"gpu0": 1})

    def test_dp_requires_replicas(self):
        with pytest.raises(StrategyError):
            OpStrategy(ParallelKind.DP, comm=CommMethod.PS)

    def test_dp_requires_comm(self):
        with pytest.raises(StrategyError):
            OpStrategy(ParallelKind.DP, replicas={"gpu0": 1})

    def test_dp_rejects_zero_count(self):
        with pytest.raises(StrategyError):
            OpStrategy(ParallelKind.DP, replicas={"gpu0": 0},
                       comm=CommMethod.PS)

    def test_batch_shares_mp(self):
        st = make_mp_strategy("gpu1")
        assert st.batch_shares() == {"gpu1": 1.0}

    def test_batch_shares_dp(self):
        st = OpStrategy(ParallelKind.DP, replicas={"a": 2, "b": 1, "c": 1},
                        comm=CommMethod.ALLREDUCE)
        shares = st.batch_shares()
        assert shares["a"] == pytest.approx(0.5)
        assert sum(shares.values()) == pytest.approx(1.0)

    def test_labels(self):
        assert make_mp_strategy("gpu3").label() == "MP:gpu3"
        st = OpStrategy(ParallelKind.DP, replicas={"a": 1},
                        comm=CommMethod.PS,
                        allocation=ReplicaAllocation.EVEN)
        assert st.label() == "EV-PS"

    def test_total_replicas(self):
        st = OpStrategy(ParallelKind.DP, replicas={"a": 2, "b": 3},
                        comm=CommMethod.PS)
        assert st.total_replicas == 5


class TestAllocations:
    def test_even_counts(self, eight_gpu):
        counts = even_replica_counts(eight_gpu)
        assert all(c == 1 for c in counts.values())
        assert len(counts) == 8

    def test_proportional_counts_reflect_power(self, eight_gpu):
        counts = proportional_replica_counts(eight_gpu)
        assert counts["gpu0"] == 2   # V100 = 2x the 1080Ti baseline
        assert counts["gpu2"] == 1   # 1080Ti

    def test_make_dp_strategy(self, four_gpu):
        st = make_dp_strategy(four_gpu, ReplicaAllocation.PROPORTIONAL,
                              CommMethod.ALLREDUCE)
        assert st.kind is ParallelKind.DP
        assert st.total_replicas >= four_gpu.num_devices


class TestStrategy:
    def test_unknown_op_rejected(self, mlp_graph, four_gpu):
        with pytest.raises(StrategyError):
            Strategy(mlp_graph, four_gpu, {"nope": make_mp_strategy("gpu0")})

    def test_unknown_device_rejected(self, mlp_graph, four_gpu):
        name = mlp_graph.op_names[0]
        with pytest.raises(StrategyError):
            Strategy(mlp_graph, four_gpu, {name: make_mp_strategy("gpu42")})

    def test_missing_strategy_rejected(self, mlp_graph, four_gpu):
        st = Strategy(mlp_graph, four_gpu)
        with pytest.raises(StrategyError):
            st.get(mlp_graph.op_names[0])

    def test_uniform_covers_all_ops(self, mlp_graph, four_gpu):
        st = uniform_strategy(mlp_graph, four_gpu, make_mp_strategy("gpu0"))
        for name in mlp_graph.op_names:
            assert st.get(name).device == "gpu0"

    def test_dp_demoted_for_non_replicable(self, mlp_graph, four_gpu):
        """ApplyGradient ops are never replicated (Sec. 5)."""
        st = uniform_strategy(
            mlp_graph, four_gpu,
            make_dp_strategy(four_gpu, ReplicaAllocation.EVEN, CommMethod.PS),
        )
        from repro.graph.op import OpPhase
        apply_ops = [o for o in mlp_graph if o.phase is OpPhase.APPLY]
        assert apply_ops
        for op in apply_ops:
            assert st.get(op.name).kind is ParallelKind.MP

    def test_single_device_strategy(self, mlp_graph, four_gpu):
        st = single_device_strategy(mlp_graph, four_gpu, "gpu2")
        mix = st.strategy_mix()
        assert mix == {"MP:gpu2": 1.0}

    def test_strategy_mix_sums_to_one(self, mlp_graph, four_gpu):
        st = uniform_strategy(
            mlp_graph, four_gpu,
            make_dp_strategy(four_gpu, ReplicaAllocation.EVEN,
                             CommMethod.ALLREDUCE),
        )
        assert sum(st.strategy_mix().values()) == pytest.approx(1.0)

    def test_set_overrides(self, mlp_graph, four_gpu):
        st = single_device_strategy(mlp_graph, four_gpu, "gpu0")
        name = mlp_graph.op_names[1]
        st.set(name, make_mp_strategy("gpu3"))
        assert st.get(name).device == "gpu3"


class TestGrouping:
    def test_fewer_ops_than_groups(self, mlp_graph):
        avg = {n: 1.0 for n in mlp_graph.op_names}
        g = group_operations(mlp_graph, avg, max_groups=10_000)
        assert g.num_groups == len(mlp_graph)

    def test_top_n_anchors_by_time(self, mlp_graph):
        avg = {n: float(i) for i, n in enumerate(mlp_graph.op_names)}
        g = group_operations(mlp_graph, avg, max_groups=3)
        assert g.num_groups == 3
        # anchors are the three longest-running ops
        top3 = sorted(avg, key=avg.get)[-3:]
        assert set(g.anchors) == set(top3)

    def test_every_op_assigned(self, mlp_graph):
        avg = {n: 1.0 for n in mlp_graph.op_names}
        g = group_operations(mlp_graph, avg, max_groups=4)
        assert set(g.group_of) == set(mlp_graph.op_names)
        assert all(0 <= v < 4 for v in g.group_of.values())

    def test_assignment_matrix_partition(self, mlp_graph):
        avg = {n: 1.0 for n in mlp_graph.op_names}
        g = group_operations(mlp_graph, avg, max_groups=5)
        index = {n: i for i, n in enumerate(mlp_graph.op_names)}
        mat = g.assignment_matrix(index)
        assert mat.shape == (5, len(mlp_graph))
        assert (mat.sum(axis=0) == 1.0).all()  # every op in exactly 1 group

    def test_missing_times_rejected(self, mlp_graph):
        with pytest.raises(GraphError):
            group_operations(mlp_graph, {}, max_groups=4)

    def test_invalid_max_groups(self, mlp_graph):
        avg = {n: 1.0 for n in mlp_graph.op_names}
        with pytest.raises(GraphError):
            group_operations(mlp_graph, avg, max_groups=0)

    def test_members_cover_graph(self, mlp_graph):
        avg = {n: 1.0 for n in mlp_graph.op_names}
        g = group_operations(mlp_graph, avg, max_groups=6)
        members = g.members()
        assert sum(len(m) for m in members) == len(mlp_graph)
