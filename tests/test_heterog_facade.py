"""Tests for the HeteroG facade and configuration plumbing."""

import pytest

import repro
from repro.agent import AgentConfig
from repro.cluster import cluster_4gpu
from repro.config import HeteroGConfig
from repro.heterog import HeteroG

from tests.helpers import make_mlp

FAST = AgentConfig(max_groups=8, gat_hidden=16, gat_layers=2, gat_heads=2,
                   strategy_dim=16, strategy_heads=2, strategy_layers=1)


@pytest.fixture(scope="module")
def four_gpu():
    return cluster_4gpu()


@pytest.fixture(scope="module")
def module(four_gpu):
    return HeteroG(four_gpu, HeteroGConfig(episodes=8, agent=FAST))


class TestFacade:
    def test_analyze_returns_analysis(self, module):
        graph = make_mlp(name="facade_a")
        analysis = module.analyze(graph)
        assert analysis.num_ops == len(graph)
        assert analysis.param_ops()
        assert analysis.gradient_ops()
        assert analysis.longest_path_flops() > 0

    def test_profile_covers_graph(self, module, four_gpu):
        graph = make_mlp(name="facade_b")
        profile = module.profile(graph)
        for op in graph:
            assert profile.op_time(op.name, "gpu0") > 0

    def test_plan_returns_feasible_strategy(self, module):
        graph = make_mlp(name="facade_c")
        strategy = module.plan(graph)
        assert sum(strategy.strategy_mix().values()) == pytest.approx(1.0)

    def test_deploy_and_run(self, module):
        graph = make_mlp(name="facade_d")
        deployment = module.deploy(graph)
        assert deployment.num_dist_ops >= len(graph)
        runner = module.runner(deployment)
        report = runner.run(2)
        assert report.mean_iteration_time > 0

    def test_order_scheduling_toggle(self, four_gpu):
        module = HeteroG(four_gpu, HeteroGConfig(
            episodes=4, use_order_scheduling=False, agent=FAST))
        graph = make_mlp(name="facade_e")
        deployment = module.deploy(graph)
        # FIFO scheduler: no ranks attached
        assert deployment.schedule.ranks is None

    def test_config_seed_propagates(self, four_gpu):
        a = HeteroG(four_gpu, HeteroGConfig(episodes=5, seed=3, agent=FAST))
        b = HeteroG(four_gpu, HeteroGConfig(episodes=5, seed=3, agent=FAST))
        ga, gb = make_mlp(name="facade_f"), make_mlp(name="facade_f")
        sa, sb = a.plan(ga), b.plan(gb)
        assert {n: s.label() for n, s in sa.items()} == \
               {n: s.label() for n, s in sb.items()}

    def test_analysis_summary_keys(self, module):
        graph = make_mlp(name="facade_g")
        summary = module.analyze(graph).summary()
        assert {"ops", "edges", "param_ops", "gradient_ops",
                "critical_path_flops"} <= set(summary)


class TestConfig:
    def test_defaults(self):
        cfg = HeteroGConfig()
        assert cfg.episodes > 0
        assert cfg.use_order_scheduling
        assert isinstance(cfg.agent, AgentConfig)

    def test_paper_scale_config(self):
        cfg = AgentConfig.paper_scale()
        assert cfg.max_groups == 2000
        assert cfg.gat_layers == 12
        assert cfg.gat_heads == 8
        assert cfg.strategy_layers == 8
